use crate::BetaTrust;
use rrs_core::{DatasetView, RaterId, RatingId, TimeWindow};
use std::collections::{BTreeMap, BTreeSet};

// Metric names, declared as constants per the `metric-name` lint rule.
const METRIC_EPOCHS: &str = "trust.epochs";
const METRIC_SUSPICIOUS_RATINGS: &str = "trust.suspicious_ratings";
const METRIC_MASS_TOTAL: &str = "trust.mass_total";
const METRIC_RATERS_TRACKED: &str = "trust.raters_tracked";

/// The before/after beta-trust state of one rater across an epoch.
///
/// Recorded only for raters that had at least one suspicious rating in
/// the epoch, so the list stays bounded by the attack size rather than
/// the population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrustDelta {
    /// The rater whose record changed.
    pub rater: RaterId,
    /// Accumulated successes `S` before the epoch.
    pub successes_before: f64,
    /// Accumulated failures `F` before the epoch.
    pub failures_before: f64,
    /// Accumulated successes `S` after the epoch.
    pub successes_after: f64,
    /// Accumulated failures `F` after the epoch.
    pub failures_after: f64,
}

/// Summary of one trust-update epoch.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TrustUpdate {
    /// Raters whose records changed in this epoch.
    pub touched: Vec<RaterId>,
    /// Total ratings processed.
    pub ratings: usize,
    /// Total ratings that were marked suspicious.
    pub suspicious: usize,
    /// Before/after records for raters that had suspicious ratings.
    pub deltas: Vec<TrustDelta>,
}

/// The trust manager of the P-scheme (paper Procedure 1).
///
/// Maintains one [`BetaTrust`] record per rater. At each update epoch the
/// caller supplies the time window covered by the epoch and the set of
/// ratings currently marked suspicious; the manager counts, per rater, how
/// many of that rater's ratings in the window were suspicious and updates
/// the record.
///
/// ```
/// use rrs_core::{ProductId, RaterId, Rating, RatingDataset, RatingSource, RatingValue,
///                TimeWindow, Timestamp};
/// use rrs_trust::TrustManager;
/// use std::collections::BTreeSet;
///
/// # fn main() -> Result<(), rrs_core::CoreError> {
/// let mut dataset = RatingDataset::new();
/// let id = dataset.insert(
///     Rating::new(RaterId::new(1), ProductId::new(0), Timestamp::new(3.0)?, RatingValue::new(0.0)?),
///     RatingSource::Unfair,
/// );
/// let mut manager = TrustManager::new();
/// let mut suspicious = BTreeSet::new();
/// suspicious.insert(id);
/// let window = TimeWindow::new(Timestamp::new(0.0)?, Timestamp::new(30.0)?)?;
/// manager.update_epoch(&dataset, window, &suspicious);
/// assert!(manager.trust_of(RaterId::new(1)) < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct TrustManager {
    records: BTreeMap<RaterId, BetaTrust>,
}

impl TrustManager {
    /// Creates a manager with no records; unknown raters have trust 0.5.
    #[must_use]
    pub fn new() -> Self {
        TrustManager::default()
    }

    /// Runs one epoch of Procedure 1 over all ratings in `window`.
    ///
    /// Accepts `&RatingDataset` or a borrowed [`DatasetView`] (the
    /// P-scheme passes its zero-copy prefix view). For each rater: `n_i`
    /// = ratings provided in the window, `f_i` = those marked suspicious;
    /// accumulates `F_i += f_i`, `S_i += n_i − f_i`.
    pub fn update_epoch<'a>(
        &mut self,
        dataset: impl Into<DatasetView<'a>>,
        window: TimeWindow,
        suspicious: &BTreeSet<RatingId>,
    ) -> TrustUpdate {
        let _span = rrs_obs::trace::span("trust.update_epoch");
        let view = dataset.into();
        let mut per_rater: BTreeMap<RaterId, (u64, u64)> = BTreeMap::new();
        let mut total = 0usize;
        let mut total_suspicious = 0usize;
        for (_, timeline) in view.products() {
            for entry in timeline.in_window(window).iter() {
                let counts = per_rater.entry(entry.rater()).or_insert((0, 0));
                counts.0 += 1;
                total += 1;
                if suspicious.contains(&entry.id()) {
                    counts.1 += 1;
                    total_suspicious += 1;
                }
            }
        }
        let mut touched = Vec::with_capacity(per_rater.len());
        let mut deltas = Vec::new();
        for (rater, (n, f)) in per_rater {
            let record = self.records.entry(rater).or_default();
            let (s_before, f_before) = (record.successes(), record.failures());
            record.record(n, f);
            if f > 0 {
                deltas.push(TrustDelta {
                    rater,
                    successes_before: s_before,
                    failures_before: f_before,
                    successes_after: record.successes(),
                    failures_after: record.failures(),
                });
            }
            touched.push(rater);
        }
        rrs_obs::metrics::counter_add(METRIC_EPOCHS, 1);
        rrs_obs::metrics::counter_add(METRIC_SUSPICIOUS_RATINGS, total_suspicious as u64);
        if rrs_obs::enabled() {
            // Trust-mass health gauges. `update_epoch` runs serially in
            // the scheme's epoch loop and the records map is ordered, so
            // this f64 accumulation is deterministic across thread
            // counts.
            let mass: f64 = self.records.values().map(BetaTrust::trust).sum();
            rrs_obs::metrics::gauge_set(METRIC_MASS_TOTAL, mass);
            rrs_obs::metrics::gauge_set(METRIC_RATERS_TRACKED, self.records.len() as f64);
        }
        TrustUpdate {
            touched,
            ratings: total,
            suspicious: total_suspicious,
            deltas,
        }
    }

    /// Returns the trust value of a rater (0.5 if never observed).
    #[must_use]
    pub fn trust_of(&self, rater: RaterId) -> f64 {
        self.records.get(&rater).map_or(0.5, BetaTrust::trust)
    }

    /// Returns the full record of a rater, if one exists.
    #[must_use]
    pub fn record(&self, rater: RaterId) -> Option<&BetaTrust> {
        self.records.get(&rater)
    }

    /// Returns a snapshot of all trust values.
    #[must_use]
    pub fn snapshot(&self) -> BTreeMap<RaterId, f64> {
        self.records.iter().map(|(r, t)| (*r, t.trust())).collect()
    }

    /// Iterates every `(rater, record)` pair in rater order.
    ///
    /// This is the checkpoint surface: together with
    /// [`TrustManager::from_records`] it round-trips the manager's full
    /// state (the accumulated `S`/`F` evidence, not just the derived
    /// trust values) bit-exactly.
    pub fn records(&self) -> impl Iterator<Item = (RaterId, &BetaTrust)> {
        self.records.iter().map(|(r, t)| (*r, t))
    }

    /// Rebuilds a manager from previously captured records.
    ///
    /// The inverse of [`TrustManager::records`]: feeding the captured
    /// pairs back yields a manager whose every observable —
    /// [`trust_of`](TrustManager::trust_of), future
    /// [`update_epoch`](TrustManager::update_epoch) results — is
    /// bit-identical to the original. Later pairs win on duplicate
    /// raters.
    pub fn from_records(records: impl IntoIterator<Item = (RaterId, BetaTrust)>) -> Self {
        TrustManager {
            records: records.into_iter().collect(),
        }
    }

    /// Applies exponential forgetting to every record.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is outside `[0, 1]`.
    pub fn discount_all(&mut self, factor: f64) {
        for record in self.records.values_mut() {
            record.discount(factor);
        }
    }

    /// Returns the number of raters with records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no rater has been observed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::{ProductId, Rating, RatingDataset, RatingSource, RatingValue, Timestamp};

    fn rating(rater: u32, product: u16, day: f64, value: f64) -> Rating {
        Rating::new(
            RaterId::new(rater),
            ProductId::new(product),
            Timestamp::new(day).unwrap(),
            RatingValue::new(value).unwrap(),
        )
    }

    fn window(a: f64, b: f64) -> TimeWindow {
        TimeWindow::new(Timestamp::new(a).unwrap(), Timestamp::new(b).unwrap()).unwrap()
    }

    #[test]
    fn unknown_rater_is_neutral() {
        let m = TrustManager::new();
        assert_eq!(m.trust_of(RaterId::new(9)), 0.5);
        assert!(m.is_empty());
    }

    #[test]
    fn honest_rater_gains_trust_over_epochs() {
        let mut d = RatingDataset::new();
        for day in 0..60 {
            d.insert(rating(1, 0, f64::from(day), 4.0), RatingSource::Fair);
        }
        let mut m = TrustManager::new();
        let empty = BTreeSet::new();
        m.update_epoch(&d, window(0.0, 30.0), &empty);
        let after_one = m.trust_of(RaterId::new(1));
        m.update_epoch(&d, window(30.0, 60.0), &empty);
        let after_two = m.trust_of(RaterId::new(1));
        assert!(after_one > 0.9);
        assert!(after_two > after_one);
    }

    #[test]
    fn suspicious_marks_destroy_trust() {
        let mut d = RatingDataset::new();
        let mut marked = BTreeSet::new();
        for day in 0..20 {
            let id = d.insert(rating(2, 0, f64::from(day), 0.0), RatingSource::Unfair);
            marked.insert(id);
        }
        let mut m = TrustManager::new();
        m.update_epoch(&d, window(0.0, 30.0), &marked);
        assert!(m.trust_of(RaterId::new(2)) < 0.1);
    }

    #[test]
    fn update_counts_only_ratings_in_window() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 5.0, 4.0), RatingSource::Fair);
        d.insert(rating(1, 0, 45.0, 4.0), RatingSource::Fair);
        let mut m = TrustManager::new();
        let up = m.update_epoch(&d, window(0.0, 30.0), &BTreeSet::new());
        assert_eq!(up.ratings, 1);
        // (S+1)/(S+F+2) with S=1, F=0 => 2/3.
        assert!((m.trust_of(RaterId::new(1)) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn update_spans_products() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 1.0, 4.0), RatingSource::Fair);
        d.insert(rating(1, 1, 2.0, 4.0), RatingSource::Fair);
        let mut m = TrustManager::new();
        let up = m.update_epoch(&d, window(0.0, 30.0), &BTreeSet::new());
        assert_eq!(up.ratings, 2);
        assert_eq!(up.touched, vec![RaterId::new(1)]);
    }

    #[test]
    fn mixed_marks_balance() {
        let mut d = RatingDataset::new();
        let mut marked = BTreeSet::new();
        for day in 0..10 {
            let id = d.insert(rating(3, 0, f64::from(day), 4.0), RatingSource::Fair);
            if day < 5 {
                marked.insert(id);
            }
        }
        let mut m = TrustManager::new();
        let up = m.update_epoch(&d, window(0.0, 30.0), &marked);
        assert_eq!(up.suspicious, 5);
        // S=5, F=5 => 6/12 = 0.5.
        assert!((m.trust_of(RaterId::new(3)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn snapshot_and_len() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 1.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 2.0, 4.0), RatingSource::Fair);
        let mut m = TrustManager::new();
        m.update_epoch(&d, window(0.0, 30.0), &BTreeSet::new());
        assert_eq!(m.len(), 2);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.values().all(|&t| t > 0.5));
    }

    #[test]
    fn records_round_trip_bit_exactly() {
        let mut d = RatingDataset::new();
        let mut marked = BTreeSet::new();
        for day in 0..20 {
            let id = d.insert(
                rating(1, 0, f64::from(day), 4.0 - f64::from(day) * 0.07),
                RatingSource::Fair,
            );
            if day % 3 == 0 {
                marked.insert(id);
            }
            d.insert(rating(2, 0, f64::from(day) + 0.5, 3.5), RatingSource::Fair);
        }
        let mut m = TrustManager::new();
        m.update_epoch(&d, window(0.0, 10.0), &marked);
        m.discount_all(0.25);
        m.update_epoch(&d, window(10.0, 20.0), &marked);

        let restored = TrustManager::from_records(m.records().map(|(r, t)| (r, *t)));
        assert_eq!(restored.len(), m.len());
        for (rater, record) in m.records() {
            let r = restored.record(rater).unwrap();
            assert_eq!(r.successes().to_bits(), record.successes().to_bits());
            assert_eq!(r.failures().to_bits(), record.failures().to_bits());
            assert_eq!(
                restored.trust_of(rater).to_bits(),
                m.trust_of(rater).to_bits()
            );
        }
        // Future epochs from the restored manager match bit for bit.
        let mut a = m.clone();
        let mut b = restored;
        let up_a = a.update_epoch(&d, window(0.0, 20.0), &marked);
        let up_b = b.update_epoch(&d, window(0.0, 20.0), &marked);
        assert_eq!(up_a, up_b);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn discount_all_moves_toward_neutral() {
        let mut d = RatingDataset::new();
        for day in 0..30 {
            d.insert(rating(1, 0, f64::from(day), 4.0), RatingSource::Fair);
        }
        let mut m = TrustManager::new();
        m.update_epoch(&d, window(0.0, 30.0), &BTreeSet::new());
        let before = m.trust_of(RaterId::new(1));
        m.discount_all(0.01);
        let after = m.trust_of(RaterId::new(1));
        assert!(after < before);
        assert!((after - 0.5).abs() < (before - 0.5).abs());
    }
}
