use std::fmt;

/// A beta-function trust record: `S` observed successes (non-suspicious
/// ratings) and `F` failures (suspicious ratings).
///
/// The trust value is the posterior mean `(S + 1) / (S + F + 2)` of a
/// Beta(S+1, F+1) distribution under a uniform prior — exactly the
/// Jøsang–Ismail beta reputation the paper adopts. A fresh record has
/// trust 0.5, matching the paper's "initial trust value of all raters is
/// 0.5".
///
/// ```
/// use rrs_trust::BetaTrust;
/// let mut t = BetaTrust::new();
/// assert_eq!(t.trust(), 0.5);
/// t.record(10, 0); // ten ratings, none suspicious
/// assert!(t.trust() > 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BetaTrust {
    s: f64,
    f: f64,
}

impl BetaTrust {
    /// Creates a fresh record with no observations (trust 0.5).
    #[must_use]
    pub fn new() -> Self {
        BetaTrust::default()
    }

    /// Creates a record with explicit success/failure counts.
    ///
    /// # Panics
    ///
    /// Panics if either count is negative or non-finite.
    #[must_use]
    pub fn with_counts(successes: f64, failures: f64) -> Self {
        assert!(
            successes.is_finite() && failures.is_finite() && successes >= 0.0 && failures >= 0.0,
            "counts must be finite and non-negative"
        );
        BetaTrust {
            s: successes,
            f: failures,
        }
    }

    /// Records an epoch in which the rater provided `n` ratings of which
    /// `suspicious` were marked suspicious (Procedure 1 inner loop).
    ///
    /// # Panics
    ///
    /// Panics if `suspicious > n`.
    pub fn record(&mut self, n: u64, suspicious: u64) {
        assert!(
            suspicious <= n,
            "cannot have more suspicious ratings ({suspicious}) than ratings ({n})"
        );
        self.f += suspicious as f64;
        self.s += (n - suspicious) as f64;
    }

    /// Returns the trust value `(S + 1) / (S + F + 2)`.
    #[must_use]
    pub fn trust(&self) -> f64 {
        (self.s + 1.0) / (self.s + self.f + 2.0)
    }

    /// Returns the accumulated success count.
    #[must_use]
    pub const fn successes(&self) -> f64 {
        self.s
    }

    /// Returns the accumulated failure count.
    #[must_use]
    pub const fn failures(&self) -> f64 {
        self.f
    }

    /// Returns the total number of observations behind this record — a
    /// crude confidence measure (more observations, tighter posterior).
    #[must_use]
    pub fn observations(&self) -> f64 {
        self.s + self.f
    }

    /// Applies exponential forgetting: both counts are scaled by
    /// `factor ∈ [0, 1]`.
    ///
    /// Forgetting lets a reformed rater recover and keeps trust responsive
    /// — part of the generic framework this model simplifies.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is outside `[0, 1]`.
    pub fn discount(&mut self, factor: f64) {
        assert!(
            (0.0..=1.0).contains(&factor),
            "discount factor must lie in [0, 1]"
        );
        self.s *= factor;
        self.f *= factor;
    }
}

impl fmt::Display for BetaTrust {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trust {:.3} (S = {:.1}, F = {:.1})",
            self.trust(),
            self.s,
            self.f
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::check::vec_of;
    use rrs_core::{prop_assert, prop_assert_eq, props};

    #[test]
    fn fresh_record_is_neutral() {
        assert_eq!(BetaTrust::new().trust(), 0.5);
        assert_eq!(BetaTrust::new().observations(), 0.0);
    }

    #[test]
    fn paper_formula() {
        // (S+1)/(S+F+2) with S=3, F=1 => 4/6.
        let t = BetaTrust::with_counts(3.0, 1.0);
        assert!((t.trust() - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn record_splits_counts() {
        let mut t = BetaTrust::new();
        t.record(5, 2);
        assert_eq!(t.successes(), 3.0);
        assert_eq!(t.failures(), 2.0);
    }

    #[test]
    #[should_panic(expected = "more suspicious")]
    fn record_rejects_overcount() {
        BetaTrust::new().record(2, 3);
    }

    #[test]
    fn all_suspicious_drives_trust_down() {
        let mut t = BetaTrust::new();
        t.record(20, 20);
        assert!(t.trust() < 0.1);
    }

    #[test]
    fn discount_pulls_back_toward_neutral() {
        let mut t = BetaTrust::with_counts(100.0, 0.0);
        let before = t.trust();
        t.discount(0.1);
        let after = t.trust();
        assert!(after < before);
        assert!(after > 0.5);
    }

    #[test]
    #[should_panic(expected = "discount factor")]
    fn discount_rejects_bad_factor() {
        BetaTrust::new().discount(1.5);
    }

    #[test]
    fn display_shows_counts() {
        let t = BetaTrust::with_counts(3.0, 1.0);
        let s = t.to_string();
        assert!(s.contains("S = 3.0"));
        assert!(s.contains("F = 1.0"));
    }

    props! {
        #[test]
        fn trust_in_open_unit_interval(s in 0.0f64..1e6, f in 0.0f64..1e6) {
            let t = BetaTrust::with_counts(s, f).trust();
            prop_assert!(t > 0.0 && t < 1.0);
        }

        #[test]
        fn trust_monotone_in_successes(s in 0.0f64..1000.0, f in 0.0f64..1000.0, extra in 1.0f64..100.0) {
            let base = BetaTrust::with_counts(s, f).trust();
            let more = BetaTrust::with_counts(s + extra, f).trust();
            prop_assert!(more > base);
        }

        #[test]
        fn trust_antitone_in_failures(s in 0.0f64..1000.0, f in 0.0f64..1000.0, extra in 1.0f64..100.0) {
            let base = BetaTrust::with_counts(s, f).trust();
            let less = BetaTrust::with_counts(s, f + extra).trust();
            prop_assert!(less < base);
        }

        #[test]
        fn record_accumulates(epochs in vec_of((0u64..50, 0u64..50), 0..20)) {
            let mut t = BetaTrust::new();
            let mut s_total = 0u64;
            let mut f_total = 0u64;
            for (n, f) in epochs {
                let f = f.min(n);
                t.record(n, f);
                s_total += n - f;
                f_total += f;
            }
            prop_assert_eq!(t.successes(), s_total as f64);
            prop_assert_eq!(t.failures(), f_total as f64);
        }
    }
}
