//! A simplified generic trust-establishment framework (Sun & Yang,
//! ICC'07).
//!
//! The paper's trust manager is described as "simplifying the generic
//! framework of trust establishment proposed in \[15\]". The two core
//! operators of that framework are kept here:
//!
//! * **Concatenation** along a recommendation path — trust through a chain
//!   of recommenders can never exceed any link.
//! * **Fusion** across independent paths — multiple opinions combine with
//!   weights proportional to their confidence.
//!
//! Trust values live in `[0, 1]` with 0.5 meaning "no information", as in
//! the beta model.

/// An opinion about a subject: a trust value and the confidence (number of
/// observations, or any non-negative weight) behind it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Opinion {
    /// Trust value in `[0, 1]`.
    pub trust: f64,
    /// Non-negative confidence weight.
    pub confidence: f64,
}

impl Opinion {
    /// Creates an opinion.
    ///
    /// # Panics
    ///
    /// Panics if `trust` is outside `[0, 1]` or `confidence` is negative.
    #[must_use]
    pub fn new(trust: f64, confidence: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&trust),
            "trust must lie in [0, 1], got {trust}"
        );
        assert!(
            confidence.is_finite() && confidence >= 0.0,
            "confidence must be non-negative"
        );
        Opinion { trust, confidence }
    }

    /// The neutral, zero-information opinion.
    #[must_use]
    pub fn neutral() -> Self {
        Opinion {
            trust: 0.5,
            confidence: 0.0,
        }
    }
}

/// Concatenates trust along a recommendation path.
///
/// If A trusts B with `t_ab` and B reports trust `t_bc` in C, A's derived
/// trust in C is pulled from `t_bc` toward the neutral 0.5 in proportion to
/// how far `t_ab` falls below certainty:
///
/// `t_ac = 0.5 + (t_bc − 0.5) · r(t_ab)`, with `r(t) = max(2t − 1, 0)`.
///
/// A recommender at or below trust 0.5 contributes nothing (`t_ac = 0.5`)
/// — distrusted recommenders are ignored rather than inverted, which is
/// the standard defense against badmouthing the badmouther.
#[must_use]
pub fn concatenate(t_ab: f64, t_bc: f64) -> f64 {
    let reliability = (2.0 * t_ab - 1.0).max(0.0);
    0.5 + (t_bc - 0.5) * reliability
}

/// Fuses independent opinions by confidence-weighted averaging.
///
/// Returns the neutral opinion when the total confidence is zero. The
/// fused confidence is the sum of the inputs' confidences.
#[must_use]
pub fn fuse(opinions: &[Opinion]) -> Opinion {
    let total: f64 = opinions.iter().map(|o| o.confidence).sum();
    if total <= 0.0 {
        return Opinion::neutral();
    }
    let trust = opinions.iter().map(|o| o.trust * o.confidence).sum::<f64>() / total;
    Opinion {
        trust,
        confidence: total,
    }
}

/// Derives trust through a multi-hop path by repeated concatenation.
///
/// An empty path yields full self-trust (1.0): concatenating nothing is
/// the identity.
#[must_use]
pub fn path_trust(path: &[f64]) -> f64 {
    let mut acc = 1.0;
    for &hop in path {
        acc = concatenate(acc, hop);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::check::vec_of;
    use rrs_core::{prop_assert, props};

    #[test]
    fn concatenate_with_full_trust_is_identity() {
        assert_eq!(concatenate(1.0, 0.9), 0.9);
        assert_eq!(concatenate(1.0, 0.2), 0.2);
    }

    #[test]
    fn concatenate_with_neutral_recommender_is_neutral() {
        assert_eq!(concatenate(0.5, 0.9), 0.5);
        // Distrusted recommenders are ignored, not inverted.
        assert_eq!(concatenate(0.1, 0.9), 0.5);
    }

    #[test]
    fn concatenate_shrinks_toward_neutral() {
        let derived = concatenate(0.8, 0.9);
        assert!(derived > 0.5 && derived < 0.9);
    }

    #[test]
    fn fuse_weighted_average() {
        let fused = fuse(&[Opinion::new(1.0, 3.0), Opinion::new(0.0, 1.0)]);
        assert!((fused.trust - 0.75).abs() < 1e-12);
        assert_eq!(fused.confidence, 4.0);
    }

    #[test]
    fn fuse_empty_is_neutral() {
        assert_eq!(fuse(&[]), Opinion::neutral());
        assert_eq!(fuse(&[Opinion::new(0.9, 0.0)]), Opinion::neutral());
    }

    #[test]
    fn path_trust_degrades_with_length() {
        let short = path_trust(&[0.9]);
        let long = path_trust(&[0.9, 0.9, 0.9]);
        assert!(long < short);
        assert!(long > 0.5);
        assert_eq!(path_trust(&[]), 1.0);
    }

    #[test]
    #[should_panic(expected = "trust must lie")]
    fn opinion_rejects_out_of_range() {
        let _ = Opinion::new(1.2, 1.0);
    }

    props! {
        #[test]
        fn concatenate_never_exceeds_recommendation_confidence(
            t_ab in 0.0f64..=1.0,
            t_bc in 0.0f64..=1.0,
        ) {
            let t = concatenate(t_ab, t_bc);
            prop_assert!((0.0..=1.0).contains(&t));
            // Derived opinion is never more extreme than the recommendation.
            prop_assert!((t - 0.5).abs() <= (t_bc - 0.5).abs() + 1e-12);
        }

        #[test]
        fn fuse_bounded_by_inputs(
            opinions in vec_of((0.0f64..=1.0, 0.01f64..10.0), 1..8)
        ) {
            let ops: Vec<Opinion> = opinions.iter().map(|&(t, c)| Opinion::new(t, c)).collect();
            let fused = fuse(&ops);
            let lo = ops.iter().map(|o| o.trust).fold(f64::INFINITY, f64::min);
            let hi = ops.iter().map(|o| o.trust).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(fused.trust >= lo - 1e-12 && fused.trust <= hi + 1e-12);
        }
    }
}
