//! Trust in raters: the beta-function trust model and the trust manager.
//!
//! The P-scheme cannot simply drop every rating that lands in a suspicious
//! interval — some fair ratings get caught. Instead (paper Section IV-G and
//! Procedure 1) suspicion feeds a per-rater *beta trust record*:
//! at each trust-update epoch, a rater who provided `n` ratings of which
//! `f` were marked suspicious accumulates `S += n − f` successes and
//! `F += f` failures, and their trust is `(S + 1) / (S + F + 2)` — the mean
//! of a Beta(S+1, F+1) distribution (Jøsang–Ismail beta reputation).
//!
//! [`framework`] carries the simplified generic trust-establishment
//! operators (concatenation along a path, fusion across paths) from
//! Sun & Yang, ICC'07, which the paper's trust manager specializes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod beta;
pub mod framework;
mod manager;

pub use beta::BetaTrust;
pub use manager::{TrustDelta, TrustManager, TrustUpdate};
