//! Storage engines behind [`RatingDataset`](crate::RatingDataset): the
//! engine/ports split.
//!
//! The paper logic (detectors, trust, aggregation) is a pure core that
//! reads ratings exclusively through the borrowed views
//! [`TimelineView`](crate::TimelineView) / [`DatasetView`](crate::DatasetView).
//! This module is the *port* those views plug into: a narrow
//! [`RatingStore`] trait with two adapters —
//!
//! * [`ColumnarStore`] — the production engine. A struct-of-arrays layout
//!   sharded by product: each shard owns parallel `ids` / `times` /
//!   `values` / `raters` / `sources` columns per product, so detector
//!   scans walk contiguous `f64`/`Timestamp` columns instead of hopping
//!   across 56-byte row structs, and bulk ingest fans shards out through
//!   [`crate::par::par_map_owned`].
//! * [`RowStore`] — the original row-oriented `BTreeMap` engine, kept as
//!   the oracle (the `prefix_view` pattern): property tests assert
//!   bit-identical detection and scheme results between the two engines,
//!   and CI byte-diffs a full `RRS_STORE=row` run against the columnar
//!   default.
//!
//! Determinism: shards are keyed by disjoint [`ProductId`] ranges and
//! never share state, so per-shard parallel ingest commutes — each
//! rating lands in exactly one shard, and within a shard entries are
//! ordered by `(time, id)` exactly as the row engine orders them. A
//! 1-thread and an 8-thread ingest therefore build byte-identical
//! stores.

use crate::dataset::{ColumnsRef, ProductTimeline, RatingEntry, TimelineView};
use crate::{ProductId, RatingValue, Timestamp};
use std::collections::BTreeMap;

/// How many consecutive product ids share one shard.
///
/// Small on purpose: the paper-scale challenge uses single-digit product
/// ids, and a narrow span spreads even those across shards so bulk
/// ingest parallelizes at every scale. With `u16` product ids the shard
/// count is bounded by `65536 / SHARD_SPAN`.
const SHARD_SPAN: u16 = 4;

/// Returns the shard key owning `product`.
const fn shard_key(product: ProductId) -> u16 {
    product.value() / SHARD_SPAN
}

/// Returns `true` when `RRS_STORE=row` forces the row-oracle engine.
///
/// Mirrors the `RRS_ONLINE` switch: the environment picks the engine at
/// dataset construction, so a whole run (and its report tree) can be
/// byte-diffed against the columnar default without recompiling.
#[must_use]
pub(crate) fn row_store_forced() -> bool {
    matches!(std::env::var("RRS_STORE").as_deref(), Ok("row"))
}

/// The narrow engine trait (`port`) `RatingDataset` drives its storage
/// through.
///
/// Implementations must keep each product's entries sorted by
/// `(time, id)` and must yield products in ascending [`ProductId`]
/// order from [`timelines`](RatingStore::timelines) — the binary-search
/// contract of [`DatasetView::product`](crate::DatasetView::product)
/// rests on it.
pub trait RatingStore {
    /// Inserts one entry under its rating's product.
    fn insert_entry(&mut self, entry: RatingEntry);

    /// Inserts a batch of entries; engines may parallelize internally
    /// but must produce the same state as repeated
    /// [`insert_entry`](RatingStore::insert_entry) calls in order.
    fn bulk_insert(&mut self, entries: Vec<RatingEntry>) {
        for entry in entries {
            self.insert_entry(entry);
        }
    }

    /// Returns the borrowed timeline of `product`, if it has ratings.
    fn timeline(&self, product: ProductId) -> Option<TimelineView<'_>>;

    /// Returns every `(product, timeline)` pair in ascending product
    /// order.
    fn timelines(&self) -> Vec<(ProductId, TimelineView<'_>)>;

    /// Returns the total number of stored ratings.
    fn len(&self) -> usize;

    /// Returns `true` if the store holds no ratings.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One product's history as five parallel columns.
///
/// All five vectors share one length and one `(time, id)`-sorted order;
/// index `i` across them reassembles the `i`-th [`RatingEntry`].
#[derive(Debug, Clone, Default, PartialEq)]
struct ColumnTimeline {
    ids: Vec<crate::RatingId>,
    times: Vec<Timestamp>,
    values: Vec<f64>,
    raters: Vec<crate::RaterId>,
    sources: Vec<crate::RatingSource>,
}

impl ColumnTimeline {
    fn len(&self) -> usize {
        self.ids.len()
    }

    /// Inserts keeping `(time, id)` order; the common case — ratings
    /// arriving in time order — is a pure append to all five columns.
    fn insert(&mut self, entry: RatingEntry) {
        let key = (entry.time(), entry.id());
        let pos = if self
            .ids
            .last()
            .is_none_or(|&last| (self.times[self.len() - 1], last) <= key)
        {
            self.len()
        } else {
            let lo = self.times.partition_point(|&t| t < entry.time());
            let hi = self.times.partition_point(|&t| t <= entry.time());
            lo + self.ids[lo..hi].partition_point(|&id| id <= entry.id())
        };
        self.ids.insert(pos, entry.id());
        self.times.insert(pos, entry.time());
        self.values.insert(pos, entry.value());
        self.raters.insert(pos, entry.rater());
        self.sources.insert(pos, entry.source());
    }

    fn view(&self, product: ProductId) -> TimelineView<'_> {
        TimelineView::from_columns(ColumnsRef {
            product,
            ids: &self.ids,
            times: &self.times,
            values: &self.values,
            raters: &self.raters,
            sources: &self.sources,
        })
    }
}

/// One shard: the column timelines of a contiguous [`ProductId`] range.
///
/// `products` is kept sorted and parallel to `timelines`.
#[derive(Debug, Clone, Default, PartialEq)]
struct Shard {
    products: Vec<ProductId>,
    timelines: Vec<ColumnTimeline>,
}

impl Shard {
    fn timeline_mut(&mut self, product: ProductId) -> &mut ColumnTimeline {
        let index = match self.products.binary_search(&product) {
            Ok(i) => i,
            Err(i) => {
                self.products.insert(i, product);
                self.timelines.insert(i, ColumnTimeline::default());
                i
            }
        };
        &mut self.timelines[index]
    }

    fn absorb(&mut self, entries: Vec<RatingEntry>) {
        for entry in entries {
            self.timeline_mut(entry.rating().product()).insert(entry);
        }
    }
}

/// The production engine: struct-of-arrays columns, sharded by product.
///
/// See the module docs for layout and determinism rationale.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ColumnarStore {
    shards: BTreeMap<u16, Shard>,
    len: usize,
}

impl ColumnarStore {
    /// Creates an empty columnar store.
    #[must_use]
    pub fn new() -> Self {
        ColumnarStore::default()
    }
}

impl RatingStore for ColumnarStore {
    fn insert_entry(&mut self, entry: RatingEntry) {
        let product = entry.rating().product();
        self.shards
            .entry(shard_key(product))
            .or_default()
            .timeline_mut(product)
            .insert(entry);
        self.len += 1;
    }

    /// Buckets the batch per shard, then runs the per-shard inserts
    /// through [`crate::par::par_map_owned`]. Shards are disjoint and
    /// each bucket preserves arrival order, so the result is identical
    /// at any thread count.
    fn bulk_insert(&mut self, entries: Vec<RatingEntry>) {
        self.len += entries.len();
        let mut buckets: BTreeMap<u16, Vec<RatingEntry>> = BTreeMap::new();
        for entry in entries {
            buckets
                .entry(shard_key(entry.rating().product()))
                .or_default()
                .push(entry);
        }
        let tasks: Vec<(u16, Shard, Vec<RatingEntry>)> = buckets
            .into_iter()
            .map(|(key, bucket)| (key, self.shards.remove(&key).unwrap_or_default(), bucket))
            .collect();
        let done = crate::par::par_map_owned(tasks, |_, (key, mut shard, bucket)| {
            shard.absorb(bucket);
            (key, shard)
        });
        for (key, shard) in done {
            self.shards.insert(key, shard);
        }
    }

    fn timeline(&self, product: ProductId) -> Option<TimelineView<'_>> {
        let shard = self.shards.get(&shard_key(product))?;
        let index = shard.products.binary_search(&product).ok()?;
        Some(shard.timelines[index].view(product))
    }

    fn timelines(&self) -> Vec<(ProductId, TimelineView<'_>)> {
        // BTreeMap iterates shard keys ascending and shard-local product
        // lists are sorted, so the concatenation is globally sorted.
        let mut out = Vec::new();
        for shard in self.shards.values() {
            for (pid, tl) in shard.products.iter().zip(&shard.timelines) {
                out.push((*pid, tl.view(*pid)));
            }
        }
        out
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// The original row-oriented engine: one `Vec<RatingEntry>` per product
/// behind a `BTreeMap`. Kept as the oracle the columnar engine is
/// byte-diffed against (`RRS_STORE=row`, plus cross-engine property
/// tests).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RowStore {
    products: BTreeMap<ProductId, ProductTimeline>,
    len: usize,
}

impl RowStore {
    /// Creates an empty row store.
    #[must_use]
    pub fn new() -> Self {
        RowStore::default()
    }
}

impl RatingStore for RowStore {
    fn insert_entry(&mut self, entry: RatingEntry) {
        self.products
            .entry(entry.rating().product())
            .or_default()
            .insert(entry);
        self.len += 1;
    }

    fn timeline(&self, product: ProductId) -> Option<TimelineView<'_>> {
        self.products.get(&product).map(ProductTimeline::view)
    }

    fn timelines(&self) -> Vec<(ProductId, TimelineView<'_>)> {
        self.products
            .iter()
            .map(|(pid, tl)| (*pid, tl.view()))
            .collect()
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Reassembles the `i`-th entry of a column set. Values were validated
/// on the way in, so the clamping constructor is an identity here.
pub(crate) fn assemble_entry(cols: &ColumnsRef<'_>, index: usize) -> RatingEntry {
    RatingEntry::assemble(
        cols.ids[index],
        crate::Rating::new(
            cols.raters[index],
            cols.product,
            cols.times[index],
            RatingValue::new_clamped(cols.values[index]),
        ),
        cols.sources[index],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RaterId, Rating, RatingDataset, RatingSource};

    fn entry(id: u64, rater: u32, product: u16, day: f64, value: f64) -> RatingEntry {
        RatingEntry::assemble(
            crate::dataset::raw_rating_id(id),
            Rating::new(
                RaterId::new(rater),
                ProductId::new(product),
                Timestamp::new(day).unwrap(),
                RatingValue::new(value).unwrap(),
            ),
            RatingSource::Fair,
        )
    }

    #[test]
    fn shard_key_groups_contiguous_ranges() {
        assert_eq!(shard_key(ProductId::new(0)), shard_key(ProductId::new(3)));
        assert_ne!(shard_key(ProductId::new(3)), shard_key(ProductId::new(4)));
    }

    #[test]
    fn columnar_insert_orders_by_time_then_id() {
        let mut store = ColumnarStore::new();
        store.insert_entry(entry(0, 1, 0, 5.0, 4.0));
        store.insert_entry(entry(1, 2, 0, 1.0, 3.0));
        store.insert_entry(entry(2, 3, 0, 5.0, 2.0));
        let tl = store.timeline(ProductId::new(0)).unwrap();
        let days: Vec<f64> = tl.times().iter().map(|t| t.as_days()).collect();
        assert_eq!(days, vec![1.0, 5.0, 5.0]);
        // Tie at day 5 keeps id order: id 0 before id 2.
        assert_eq!(tl.id_at(1).value(), 0);
        assert_eq!(tl.id_at(2).value(), 2);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn bulk_insert_matches_serial_inserts() {
        let batch: Vec<RatingEntry> = (0..200)
            .map(|i| {
                entry(
                    i,
                    i as u32,
                    (i % 13) as u16,
                    (i as f64 * 7.3) % 90.0,
                    3.0 + (i % 3) as f64 / 2.0,
                )
            })
            .collect();
        let mut serial = ColumnarStore::new();
        for e in &batch {
            serial.insert_entry(*e);
        }
        let mut bulk = ColumnarStore::new();
        bulk.bulk_insert(batch);
        assert_eq!(serial, bulk);
    }

    #[test]
    fn bulk_insert_is_thread_count_invariant() {
        let batch: Vec<RatingEntry> = (0..500)
            .map(|i| entry(i, i as u32, (i % 29) as u16, (i as f64 * 3.7) % 60.0, 4.0))
            .collect();
        let one = crate::par::with_threads(1, || {
            let mut s = ColumnarStore::new();
            s.bulk_insert(batch.clone());
            s
        });
        let eight = crate::par::with_threads(8, || {
            let mut s = ColumnarStore::new();
            s.bulk_insert(batch.clone());
            s
        });
        assert_eq!(one, eight);
    }

    #[test]
    fn row_and_columnar_agree_on_views() {
        let batch: Vec<RatingEntry> = (0..120)
            .map(|i| entry(i, i as u32, (i % 7) as u16, (i as f64 * 11.0) % 45.0, 2.5))
            .collect();
        let mut row = RowStore::new();
        let mut col = ColumnarStore::new();
        for e in batch {
            row.insert_entry(e);
            col.insert_entry(e);
        }
        assert_eq!(row.len(), col.len());
        let row_tls = row.timelines();
        let col_tls = col.timelines();
        assert_eq!(row_tls.len(), col_tls.len());
        for ((rp, rtl), (cp, ctl)) in row_tls.iter().zip(&col_tls) {
            assert_eq!(rp, cp);
            assert_eq!(rtl, ctl);
        }
    }

    #[test]
    fn env_switch_is_honored_by_dataset_constructors() {
        // `RatingDataset::columnar`/`row_oracle` pin the engine
        // regardless of the environment; `new()` consults `RRS_STORE`.
        assert!(!RatingDataset::columnar().is_row_backed());
        assert!(RatingDataset::row_oracle().is_row_backed());
    }
}
