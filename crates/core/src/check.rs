//! In-tree deterministic property-test harness.
//!
//! A minimal replacement for the slice of `proptest` this workspace used:
//! seeded case generation from [`rng::Xoshiro256pp`](crate::rng), a fixed
//! case count, and first-failure input reporting. Unlike `proptest` the
//! harness is fully deterministic — every case seed derives from the suite
//! seed, the property name, and the case index, so a failure reported on one
//! machine replays byte-identically on any other. There is no shrinking;
//! the reported input plus the per-case seed make failures reproducible,
//! which for this codebase's numeric properties has proven enough.
//!
//! Properties are declared with the [`props!`](crate::props) macro, whose
//! grammar mirrors the `proptest!` blocks it replaced:
//!
//! ```
//! use rrs_core::{check::vec_of, prop_assert, props};
//!
//! props! {
//!     #[test]
//!     fn mean_is_bounded(xs in vec_of(-10.0f64..10.0, 1..50)) {
//!         let mean = xs.iter().sum::<f64>() / xs.len() as f64;
//!         prop_assert!(xs.iter().cloned().fold(f64::INFINITY, f64::min) <= mean);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! The default of 256 cases per property can be overridden per block with
//! `#![cases(N)]` (the expensive end-to-end suites use this) or globally
//! with the `RRS_PROP_CASES` environment variable; `RRS_PROP_SEED` rotates
//! the suite seed.

// The doctest's `#[test]` is the `props!` grammar itself, not a unit
// test smuggled into documentation; the example compiles and runs.
#![allow(clippy::test_attr_in_doctest)]

use crate::rng::{RrsRng, Xoshiro256pp};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 256;

/// Default suite seed; combined with the property name and case index to
/// derive each case's generator seed.
pub const DEFAULT_SEED: u64 = 0x5EED_CA5E_5EED_CA5E;

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok()?.trim().parse().ok()
}

/// Number of cases to run, honouring the `RRS_PROP_CASES` override.
#[must_use]
pub fn case_count(explicit: Option<u32>) -> u32 {
    if let Some(n) = env_u64("RRS_PROP_CASES") {
        return n.min(u64::from(u32::MAX)) as u32;
    }
    explicit.unwrap_or(DEFAULT_CASES)
}

/// Suite seed, honouring the `RRS_PROP_SEED` override.
#[must_use]
pub fn suite_seed() -> u64 {
    env_u64("RRS_PROP_SEED").unwrap_or(DEFAULT_SEED)
}

/// FNV-1a, used to fold the property name into the case seed so distinct
/// properties explore distinct streams under the same suite seed.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic per-case generator seed.
#[must_use]
pub fn case_seed(suite: u64, name: &str, index: u32) -> u64 {
    suite ^ fnv1a(name.as_bytes()) ^ (u64::from(index)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs `cases` seeded cases of a property: `generate` draws an input,
/// `body` asserts over it. On the first failing case the harness panics
/// with the property name, case index, per-case seed, and the `Debug`
/// rendering of the offending input.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) when any case's body panics.
pub fn run_property<I, G, F>(name: &str, cases: Option<u32>, generate: G, body: F)
where
    I: Clone + Debug,
    G: Fn(&mut Xoshiro256pp) -> I,
    F: Fn(I),
{
    let cases = case_count(cases);
    let suite = suite_seed();
    for index in 0..cases {
        let seed = case_seed(suite, name, index);
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let input = generate(&mut rng);
        let kept = input.clone();
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| body(input))) {
            let message = panic
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| panic.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            panic!(
                "property `{name}` failed at case {index}/{cases} \
                 (case seed {seed:#018X}, suite seed {suite:#018X})\n\
                 input: {kept:?}\n\
                 cause: {message}\n\
                 replay: RRS_PROP_SEED={suite} RRS_PROP_CASES={cases} \
                 cargo test {name}"
            );
        }
    }
}

/// A deterministic input generator, implemented by ranges, tuples of
/// generators, and the combinators in this module.
pub trait Gen {
    /// The value type produced.
    type Value;
    /// Draws one value from `rng`.
    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value;
}

macro_rules! range_gen {
    ($($t:ty),+) => {$(
        impl Gen for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Gen for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

range_gen!(f64, usize, u64, u32, u16, u8);

macro_rules! tuple_gen {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Gen),+> Gen for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_gen!(A: 0);
tuple_gen!(A: 0, B: 1);
tuple_gen!(A: 0, B: 1, C: 2);
tuple_gen!(A: 0, B: 1, C: 2, D: 3);

/// Length specification for [`vec_of`]: an exact `usize`, `lo..hi`, or
/// `lo..=hi`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.end > r.start, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.end() >= r.start(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generator of `Vec`s whose elements come from `element` and whose length
/// is drawn from `size`.
#[derive(Clone, Debug)]
pub struct VecGen<G> {
    element: G,
    size: SizeRange,
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;
    fn generate(&self, rng: &mut Xoshiro256pp) -> Vec<G::Value> {
        let len = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..=self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `vec_of(el, 1..50)` — the analogue of `proptest::collection::vec`.
pub fn vec_of<G: Gen>(element: G, size: impl Into<SizeRange>) -> VecGen<G> {
    VecGen {
        element,
        size: size.into(),
    }
}

/// Generator of arbitrary `f64` bit patterns — finite values of every
/// magnitude and sign plus infinities and NaNs, the analogue of
/// `proptest::num::f64::ANY`. One case in four is drawn from a benign
/// moderate range so properties also see "ordinary" inputs often.
#[derive(Clone, Copy, Debug)]
pub struct AnyF64;

impl Gen for AnyF64 {
    type Value = f64;
    fn generate(&self, rng: &mut Xoshiro256pp) -> f64 {
        if rng.gen_range(0u8..4) == 0 {
            rng.gen_range(-1.0e3..1.0e3)
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}

/// Any `f64` bit pattern, including `±inf` and NaN.
#[must_use]
pub fn any_f64() -> AnyF64 {
    AnyF64
}

/// Generator produced by [`map`]: applies a function to another
/// generator's output.
#[derive(Clone, Debug)]
pub struct MapGen<G, F> {
    inner: G,
    f: F,
}

impl<G: Gen, T, F: Fn(G::Value) -> T> Gen for MapGen<G, F> {
    type Value = T;
    fn generate(&self, rng: &mut Xoshiro256pp) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Transforms a generator's output, e.g. `map(0u32..10, |n| n * 2)`.
pub fn map<G: Gen, T, F: Fn(G::Value) -> T>(inner: G, f: F) -> MapGen<G, F> {
    MapGen { inner, f }
}

/// Declares deterministic property tests; see the [module docs](self) for
/// the grammar. `prop_assert!`/`prop_assert_eq!` are accepted in bodies for
/// continuity with the `proptest!` blocks this macro replaced.
#[macro_export]
macro_rules! props {
    (@each $cases:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $gen:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                $crate::check::run_property(
                    stringify!($name),
                    $cases,
                    |__rng| ( $( $crate::check::Gen::generate(&($gen), __rng), )+ ),
                    |( $($arg,)+ )| $body,
                );
            }
        )*
    };
    (#![cases($n:expr)] $($rest:tt)*) => {
        $crate::props!(@each Some($n); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::props!(@each None; $($rest)*);
    };
}

/// Body-level assertion for [`props!`] blocks; identical to `assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Body-level equality assertion for [`props!`] blocks; identical to
/// `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seed_is_deterministic_and_name_sensitive() {
        assert_eq!(case_seed(1, "a", 0), case_seed(1, "a", 0));
        assert_ne!(case_seed(1, "a", 0), case_seed(1, "b", 0));
        assert_ne!(case_seed(1, "a", 0), case_seed(1, "a", 1));
    }

    #[test]
    fn generators_respect_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        for _ in 0..500 {
            let x = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&x));
            let n = (3usize..=7).generate(&mut rng);
            assert!((3..=7).contains(&n));
            let v = vec_of(0u32..5, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 5));
            let (a, b) = ((0.0f64..1.0), (10u64..20)).generate(&mut rng);
            assert!((0.0..1.0).contains(&a) && (10..20).contains(&b));
        }
    }

    #[test]
    fn exact_size_vec() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        assert_eq!(vec_of(0.0f64..1.0, 9).generate(&mut rng).len(), 9);
    }

    #[test]
    fn any_f64_produces_specials_and_ordinary_values() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let xs: Vec<f64> = (0..4_000).map(|_| any_f64().generate(&mut rng)).collect();
        assert!(xs.iter().any(|x| x.is_nan()));
        assert!(xs.iter().any(|x| x.is_finite()));
    }

    #[test]
    fn failing_property_reports_input_and_seed() {
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_property(
                "always_fails",
                Some(8),
                |rng| rng.gen_range(0u32..100),
                |n| {
                    assert!(n > 1_000, "n was {n}");
                },
            );
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(
            msg.contains("property `always_fails` failed at case 0"),
            "{msg}"
        );
        assert!(msg.contains("input:"), "{msg}");
        assert!(msg.contains("replay:"), "{msg}");
    }

    #[test]
    fn passing_property_runs_all_cases() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let count = AtomicU32::new(0);
        run_property(
            "counts",
            Some(17),
            |rng| rng.gen::<f64>(),
            |x| {
                count.fetch_add(1, Ordering::Relaxed);
                assert!((0.0..1.0).contains(&x));
            },
        );
        // RRS_PROP_CASES deliberately overrides explicit counts, so compare
        // against the resolved count rather than the literal 17.
        assert_eq!(count.load(Ordering::Relaxed), case_count(Some(17)));
    }

    props! {
        #![cases(64)]

        #[test]
        fn macro_declares_runnable_properties(
            xs in vec_of(-5.0f64..5.0, 1..20),
            k in 1usize..4,
        ) {
            prop_assert!(k >= 1);
            prop_assert_eq!(xs.len(), xs.len());
            prop_assert!(xs.iter().all(|x| x.abs() <= 5.0));
        }
    }
}
