//! Plain-text import/export of rating datasets.
//!
//! A deliberately simple CSV dialect so users can bring their own rating
//! data to the detectors and schemes (or export synthetic challenges for
//! other tools):
//!
//! ```text
//! rater,product,day,value,source
//! 17,0,12.5,4.0,fair
//! 1000003,2,61.25,0.5,unfair
//! ```
//!
//! The `source` column is optional on import (defaults to `fair`); the
//! header row is required. No quoting is needed — every field is
//! numeric or a fixed keyword — which keeps the format trivially
//! interoperable with spreadsheet tools.

use crate::{
    CoreError, ProductId, RaterId, Rating, RatingDataset, RatingSource, RatingValue, Timestamp,
};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from dataset import.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header row is missing or malformed.
    Header {
        /// The offending header line.
        found: String,
    },
    /// A data row could not be parsed.
    Row {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A parsed field violated a domain constraint.
    Domain {
        /// 1-based line number.
        line: usize,
        /// The underlying domain error.
        source: CoreError,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Header { found } => {
                write!(
                    f,
                    "expected header 'rater,product,day,value[,source]', found {found:?}"
                )
            }
            CsvError::Row { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Domain { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Domain { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a dataset as CSV.
///
/// Rows are emitted grouped by product and in time order within each
/// product — the same order [`RatingDataset::iter`] yields.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(dataset: &RatingDataset, mut writer: W) -> Result<(), CsvError> {
    writeln!(writer, "rater,product,day,value,source")?;
    for entry in dataset.iter() {
        let r = entry.rating();
        writeln!(
            writer,
            "{},{},{},{},{}",
            r.rater().value(),
            r.product().value(),
            r.time().as_days(),
            r.value().get(),
            entry.source(),
        )?;
    }
    Ok(())
}

/// Renders a dataset as a CSV string.
#[must_use]
pub fn to_csv_string(dataset: &RatingDataset) -> String {
    let mut buf = Vec::new();
    // Writing to a Vec cannot fail, and the output is ASCII; the lossy
    // conversion makes both facts checker-visible without a panic path.
    let _ = write_csv(dataset, &mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

/// Writes a dataset as a JSON array of rating objects:
///
/// ```json
/// [
///   {"rater":17,"product":0,"day":12.5,"value":4.0,"source":"fair"}
/// ]
/// ```
///
/// Hand-rolled on purpose: every field is a finite number or one of two
/// fixed keywords, so the workspace stays free of a serialization
/// dependency. Row order matches [`write_csv`].
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_json<W: Write>(dataset: &RatingDataset, mut writer: W) -> Result<(), CsvError> {
    writeln!(writer, "[")?;
    let total = dataset.len();
    for (i, entry) in dataset.iter().enumerate() {
        let r = entry.rating();
        let comma = if i + 1 < total { "," } else { "" };
        writeln!(
            writer,
            "  {{\"rater\":{},\"product\":{},\"day\":{},\"value\":{},\"source\":\"{}\"}}{comma}",
            r.rater().value(),
            r.product().value(),
            json_number(r.time().as_days()),
            json_number(r.value().get()),
            entry.source(),
        )?;
    }
    writeln!(writer, "]")?;
    Ok(())
}

/// Renders a dataset as a JSON string.
#[must_use]
pub fn to_json_string(dataset: &RatingDataset) -> String {
    let mut buf = Vec::new();
    // Same reasoning as `to_csv_string`: infallible writer, ASCII output.
    let _ = write_json(dataset, &mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

/// Formats a finite `f64` as a JSON number (Rust's shortest round-trip
/// `Display`, with a trailing `.0` forced onto integral values so the
/// field reads back as floating-point in typed consumers).
#[must_use]
pub fn json_number(x: f64) -> String {
    debug_assert!(x.is_finite(), "rating fields are finite by construction");
    let s = x.to_string();
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Formats any `f64` as a valid JSON token: finite values go through
/// [`json_number`], non-finite ones (NaN/±inf, which JSON cannot
/// represent) become `null`.
///
/// Telemetry values cross this API unvalidated — a gauge can legally be
/// set to the result of a division that went 0/0 — so the serializer,
/// not the caller, owns producing parseable output.
#[must_use]
pub fn json_number_or_null(x: f64) -> String {
    if x.is_finite() {
        json_number(x)
    } else {
        "null".to_string()
    }
}

/// Escapes and quotes `s` as a JSON string literal.
///
/// Handles the two mandatory escapes (`"` and `\`), the common control
/// characters as their short forms (`\n`, `\r`, `\t`, `\u{8}`, `\u{c}`),
/// and every other control character as `\u00XX`. Non-ASCII characters
/// pass through unescaped — JSON documents are UTF-8, so `é` or `日` are
/// valid in string bodies as-is.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Reads a dataset from CSV.
///
/// Accepts both 4-column (`rater,product,day,value`) and 5-column
/// (`…,source`) data; blank lines are skipped.
///
/// # Errors
///
/// Returns [`CsvError`] on I/O failures, a bad header, unparsable rows,
/// or out-of-domain values.
pub fn read_csv<R: Read>(reader: R) -> Result<RatingDataset, CsvError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    let normalized = header.trim().to_ascii_lowercase();
    if normalized != "rater,product,day,value,source" && normalized != "rater,product,day,value" {
        return Err(CsvError::Header { found: header });
    }

    let mut dataset = RatingDataset::new();
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2; // 1-based, after the header
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 4 && fields.len() != 5 {
            return Err(CsvError::Row {
                line: line_no,
                message: format!("expected 4 or 5 fields, found {}", fields.len()),
            });
        }
        let parse_num = |s: &str, what: &str| -> Result<f64, CsvError> {
            s.trim().parse::<f64>().map_err(|e| CsvError::Row {
                line: line_no,
                message: format!("bad {what} {s:?}: {e}"),
            })
        };
        let rater = parse_num(fields[0], "rater id")? as u32;
        let product = parse_num(fields[1], "product id")? as u16;
        let day = parse_num(fields[2], "day")?;
        let value = parse_num(fields[3], "value")?;
        let source = match fields.get(4).map(|s| s.trim().to_ascii_lowercase()) {
            None => RatingSource::Fair,
            Some(s) if s == "fair" => RatingSource::Fair,
            Some(s) if s == "unfair" => RatingSource::Unfair,
            Some(s) => {
                return Err(CsvError::Row {
                    line: line_no,
                    message: format!("source must be 'fair' or 'unfair', found {s:?}"),
                })
            }
        };
        let time = Timestamp::new(day).map_err(|source| CsvError::Domain {
            line: line_no,
            source,
        })?;
        let value = RatingValue::new(value).map_err(|source| CsvError::Domain {
            line: line_no,
            source,
        })?;
        dataset.insert(
            Rating::new(RaterId::new(rater), ProductId::new(product), time, value),
            source,
        );
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RatingDataset {
        let mut d = RatingDataset::new();
        d.insert(
            Rating::new(
                RaterId::new(1),
                ProductId::new(0),
                Timestamp::new(1.5).unwrap(),
                RatingValue::new(4.0).unwrap(),
            ),
            RatingSource::Fair,
        );
        d.insert(
            Rating::new(
                RaterId::new(2),
                ProductId::new(1),
                Timestamp::new(2.25).unwrap(),
                RatingValue::new(0.5).unwrap(),
            ),
            RatingSource::Unfair,
        );
        d
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let original = sample();
        let csv = to_csv_string(&original);
        let restored = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(restored.len(), original.len());
        let pairs = original.iter().zip(restored.iter());
        for (a, b) in pairs {
            assert_eq!(a.rating(), b.rating());
            assert_eq!(a.source(), b.source());
        }
    }

    #[test]
    fn json_export_is_wellformed_and_ordered() {
        let json = to_json_string(&sample());
        assert_eq!(
            json,
            "[\n  {\"rater\":1,\"product\":0,\"day\":1.5,\"value\":4.0,\"source\":\"fair\"},\n  \
             {\"rater\":2,\"product\":1,\"day\":2.25,\"value\":0.5,\"source\":\"unfair\"}\n]\n"
        );
    }

    #[test]
    fn json_export_of_empty_dataset_is_empty_array() {
        assert_eq!(to_json_string(&RatingDataset::new()), "[\n]\n");
    }

    #[test]
    fn json_number_forces_float_shape_on_integral_values() {
        assert_eq!(json_number(10.0), "10.0");
        assert_eq!(json_number(1.5), "1.5");
    }

    #[test]
    fn json_number_or_null_handles_non_finite() {
        assert_eq!(json_number_or_null(2.5), "2.5");
        assert_eq!(json_number_or_null(10.0), "10.0");
        assert_eq!(json_number_or_null(f64::NAN), "null");
        assert_eq!(json_number_or_null(f64::INFINITY), "null");
        assert_eq!(json_number_or_null(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn json_string_escapes_quotes_and_backslashes() {
        assert_eq!(json_string(r#"say "hi""#), r#""say \"hi\"""#);
        assert_eq!(json_string(r"a\b"), r#""a\\b""#);
        // An already-escaped-looking input must be escaped again, not
        // passed through: the writer escapes *content*, not syntax.
        assert_eq!(json_string(r#"\""#), r#""\\\"""#);
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("a\rb"), "\"a\\rb\"");
        assert_eq!(json_string("a\tb"), "\"a\\tb\"");
        assert_eq!(json_string("a\u{8}b"), "\"a\\bb\"");
        assert_eq!(json_string("a\u{c}b"), "\"a\\fb\"");
        // Control characters without a short form use \u00XX.
        assert_eq!(json_string("a\u{0}b"), "\"a\\u0000b\"");
        assert_eq!(json_string("a\u{1f}b"), "\"a\\u001fb\"");
        // 0x7F (DEL) is not a JSON-mandated escape; it passes through.
        assert_eq!(json_string("a\u{7f}b"), "\"a\u{7f}b\"");
    }

    #[test]
    fn json_string_passes_non_ascii_through_as_utf8() {
        assert_eq!(json_string("café"), "\"café\"");
        assert_eq!(json_string("日本語"), "\"日本語\"");
        assert_eq!(json_string("emoji 🎉"), "\"emoji 🎉\"");
        // Mixed: the multibyte characters survive while the neighbors
        // still get escaped.
        assert_eq!(json_string("é\n\"日\""), "\"é\\n\\\"日\\\"\"");
    }

    #[test]
    fn json_string_plain_ascii_is_just_quoted() {
        assert_eq!(json_string(""), "\"\"");
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(
            json_string("with space / punct."),
            "\"with space / punct.\""
        );
    }

    #[test]
    fn four_column_import_defaults_to_fair() {
        let csv = "rater,product,day,value\n7,3,10.0,4.5\n";
        let d = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(d.len(), 1);
        let entry = d.iter().next().unwrap();
        assert_eq!(entry.source(), RatingSource::Fair);
        assert_eq!(entry.value(), 4.5);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "rater,product,day,value\n\n7,3,10.0,4.5\n\n";
        assert_eq!(read_csv(csv.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn bad_header_is_rejected() {
        let e = read_csv("who,what,when\n".as_bytes()).unwrap_err();
        assert!(matches!(e, CsvError::Header { .. }));
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn bad_row_reports_line_number() {
        let csv = "rater,product,day,value\n1,2,3\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        match e {
            CsvError::Row { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn out_of_scale_value_reports_domain_error() {
        let csv = "rater,product,day,value\n1,2,3.0,9.5\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(e, CsvError::Domain { line: 2, .. }));
        assert!(e.source().is_some());
    }

    #[test]
    fn bad_source_keyword_rejected() {
        let csv = "rater,product,day,value,source\n1,2,3.0,4.0,bogus\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn header_is_case_insensitive() {
        let csv = "Rater,Product,Day,Value,Source\n1,2,3.0,4.0,fair\n";
        assert_eq!(read_csv(csv.as_bytes()).unwrap().len(), 1);
    }
}
