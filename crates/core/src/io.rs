//! Plain-text import/export of rating datasets.
//!
//! A deliberately simple CSV dialect so users can bring their own rating
//! data to the detectors and schemes (or export synthetic challenges for
//! other tools):
//!
//! ```text
//! rater,product,day,value,source
//! 17,0,12.5,4.0,fair
//! 1000003,2,61.25,0.5,unfair
//! ```
//!
//! The `source` column is optional on import (defaults to `fair`); the
//! header row is required. No quoting is needed — every field is
//! numeric or a fixed keyword — which keeps the format trivially
//! interoperable with spreadsheet tools.

use crate::{
    CoreError, ProductId, RaterId, Rating, RatingDataset, RatingSource, RatingValue, Timestamp,
};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};

/// Errors from dataset import.
#[derive(Debug)]
#[non_exhaustive]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header row is missing or malformed.
    Header {
        /// The offending header line.
        found: String,
    },
    /// A data row could not be parsed.
    Row {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A parsed field violated a domain constraint.
    Domain {
        /// 1-based line number.
        line: usize,
        /// The underlying domain error.
        source: CoreError,
    },
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Header { found } => {
                write!(
                    f,
                    "expected header 'rater,product,day,value[,source]', found {found:?}"
                )
            }
            CsvError::Row { line, message } => write!(f, "line {line}: {message}"),
            CsvError::Domain { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl Error for CsvError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CsvError::Io(e) => Some(e),
            CsvError::Domain { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Writes a dataset as CSV.
///
/// Rows are emitted grouped by product and in time order within each
/// product — the same order [`RatingDataset::iter`] yields.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(dataset: &RatingDataset, mut writer: W) -> Result<(), CsvError> {
    writeln!(writer, "rater,product,day,value,source")?;
    for entry in dataset.iter() {
        let r = entry.rating();
        writeln!(
            writer,
            "{},{},{},{},{}",
            r.rater().value(),
            r.product().value(),
            r.time().as_days(),
            r.value().get(),
            entry.source(),
        )?;
    }
    Ok(())
}

/// Renders a dataset as a CSV string.
#[must_use]
pub fn to_csv_string(dataset: &RatingDataset) -> String {
    let mut buf = Vec::new();
    // Writing to a Vec cannot fail, and the output is ASCII; the lossy
    // conversion makes both facts checker-visible without a panic path.
    let _ = write_csv(dataset, &mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

/// Writes a dataset as a JSON array of rating objects:
///
/// ```json
/// [
///   {"rater":17,"product":0,"day":12.5,"value":4.0,"source":"fair"}
/// ]
/// ```
///
/// Hand-rolled on purpose: every field is a finite number or one of two
/// fixed keywords, so the workspace stays free of a serialization
/// dependency. Row order matches [`write_csv`].
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_json<W: Write>(dataset: &RatingDataset, mut writer: W) -> Result<(), CsvError> {
    writeln!(writer, "[")?;
    let total = dataset.len();
    for (i, entry) in dataset.iter().enumerate() {
        let r = entry.rating();
        let comma = if i + 1 < total { "," } else { "" };
        writeln!(
            writer,
            "  {{\"rater\":{},\"product\":{},\"day\":{},\"value\":{},\"source\":\"{}\"}}{comma}",
            r.rater().value(),
            r.product().value(),
            json_number(r.time().as_days()),
            json_number(r.value().get()),
            entry.source(),
        )?;
    }
    writeln!(writer, "]")?;
    Ok(())
}

/// Renders a dataset as a JSON string.
#[must_use]
pub fn to_json_string(dataset: &RatingDataset) -> String {
    let mut buf = Vec::new();
    // Same reasoning as `to_csv_string`: infallible writer, ASCII output.
    let _ = write_json(dataset, &mut buf);
    String::from_utf8_lossy(&buf).into_owned()
}

/// Formats a finite `f64` as a JSON number (Rust's shortest round-trip
/// `Display`, with a trailing `.0` forced onto integral values so the
/// field reads back as floating-point in typed consumers).
#[must_use]
pub fn json_number(x: f64) -> String {
    debug_assert!(x.is_finite(), "rating fields are finite by construction");
    let s = x.to_string();
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Formats any `f64` as a valid JSON token: finite values go through
/// [`json_number`], non-finite ones (NaN/±inf, which JSON cannot
/// represent) become `null`.
///
/// Telemetry values cross this API unvalidated — a gauge can legally be
/// set to the result of a division that went 0/0 — so the serializer,
/// not the caller, owns producing parseable output.
#[must_use]
pub fn json_number_or_null(x: f64) -> String {
    if x.is_finite() {
        json_number(x)
    } else {
        "null".to_string()
    }
}

/// Escapes and quotes `s` as a JSON string literal.
///
/// Handles the two mandatory escapes (`"` and `\`), the common control
/// characters as their short forms (`\n`, `\r`, `\t`, `\u{8}`, `\u{c}`),
/// and every other control character as `\u00XX`. Non-ASCII characters
/// pass through unescaped — JSON documents are UTF-8, so `é` or `日` are
/// valid in string bodies as-is.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One scalar field of a flat JSONL object.
///
/// Numbers are carried as their raw tokens: the consumer decides
/// whether a field is a `u64` (ids, bit patterns — which do not fit
/// losslessly in an `f64`) or an `f64` (shortest-round-trip floats),
/// so this layer never forces a lossy representation on either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonScalar {
    /// A numeric field, as its raw token (validated to parse as `f64`).
    Number(String),
    /// A string field, with escapes resolved.
    Text(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonScalar {
    /// The field as an `f64`, if it is numeric.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonScalar::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The field as a `u64`, if it is numeric and a plain non-negative
    /// integer token (bit-exact — no round trip through `f64`).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonScalar::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The field as a string, if it is one.
    #[must_use]
    pub fn as_text(&self) -> Option<&str> {
        match self {
            JsonScalar::Text(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one line of JSONL as a flat object of scalar fields.
///
/// This is the read half of the JSONL dialect the workspace writes
/// (`write_json` rows, WAL events, checkpoint records): exactly one
/// object per line, string keys, scalar values only. It is strict on
/// purpose — nested containers, duplicate keys, trailing garbage, and
/// malformed escapes are errors, never guesses — because its callers
/// replay durable state where a misread field means silent corruption.
///
/// Field order is preserved.
///
/// # Errors
///
/// Returns a human-readable message with the byte offset of the
/// problem.
pub fn parse_jsonl_object(line: &str) -> Result<Vec<(String, JsonScalar)>, String> {
    let mut p = JsonCursor {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.require(b'{')?;
    let mut fields: Vec<(String, JsonScalar)> = Vec::new();
    p.skip_ws();
    if !p.eat(b'}') {
        loop {
            p.skip_ws();
            let key = p.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?}"));
            }
            p.skip_ws();
            p.require(b':')?;
            p.skip_ws();
            let value = p.scalar()?;
            fields.push((key, value));
            p.skip_ws();
            if p.eat(b',') {
                continue;
            }
            p.require(b'}')?;
            break;
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(fields)
}

/// Looks up a field by name in a parsed JSONL object.
#[must_use]
pub fn jsonl_field<'a>(fields: &'a [(String, JsonScalar)], name: &str) -> Option<&'a JsonScalar> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// Byte cursor over one JSONL line.
struct JsonCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonCursor<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\r' | b'\n'))
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn require(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                char::from(b),
                self.pos,
                self.bytes.get(self.pos).map(|&c| char::from(c)),
            ))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn scalar(&mut self) -> Result<JsonScalar, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JsonScalar::Text(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(JsonScalar::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(JsonScalar::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(JsonScalar::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "expected a scalar at byte {}, found {:?}",
                self.pos,
                other.map(|&c| char::from(c)),
            )),
        }
    }

    fn number(&mut self) -> Result<JsonScalar, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        // The token set above is ASCII, so the slice is valid UTF-8.
        let raw = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        let parsed: Result<f64, _> = raw.parse();
        if parsed.is_err() {
            return Err(format!("bad number {raw:?} at byte {start}"));
        }
        Ok(JsonScalar::Number(raw))
    }

    fn string(&mut self) -> Result<String, String> {
        self.require(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a maximal unescaped run in one UTF-8-safe slice.
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|&b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at byte {start}"))?;
                out.push_str(run);
            }
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    out.push(self.escape()?);
                }
                Some(_) => {
                    return Err(format!("unescaped control character at byte {}", self.pos));
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn escape(&mut self) -> Result<char, String> {
        let at = self.pos;
        let Some(&b) = self.bytes.get(self.pos) else {
            return Err("unterminated escape".to_string());
        };
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'u' => {
                let hex = self
                    .bytes
                    .get(self.pos..self.pos + 4)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .ok_or_else(|| format!("truncated \\u escape at byte {at}"))?;
                let code = u32::from_str_radix(hex, 16)
                    .map_err(|_| format!("bad \\u escape {hex:?} at byte {at}"))?;
                self.pos += 4;
                // Surrogate pairs are rejected rather than decoded: the
                // writers in this workspace never emit them (non-ASCII
                // passes through as UTF-8).
                char::from_u32(code)
                    .ok_or_else(|| format!("\\u escape {hex:?} is not a scalar value"))?
            }
            other => {
                return Err(format!(
                    "unknown escape {:?} at byte {at}",
                    char::from(other)
                ))
            }
        })
    }
}

/// Parses a rater id from its decimal text form.
///
/// Ids are identities, not measurements: the field must be a plain
/// base-10 integer in `[0, u32::MAX]`. A fractional id like `7.9`, a
/// negative one, scientific notation, or anything beyond the 32-bit
/// space is an error, never a coercion — the old float-parse-then-cast
/// path silently aliased such inputs onto a *different rater's*
/// identity, which corrupts per-rater beta trust.
///
/// # Errors
///
/// Returns a human-readable message naming the field and the offending
/// token.
pub fn parse_rater_id(field: &str) -> Result<RaterId, String> {
    // The range check proves the cast lossless.
    parse_integer_id(field, "rater id", u64::from(u32::MAX)).map(|v| RaterId::new(v as u32))
}

/// Parses a product id from its decimal text form.
///
/// Same contract as [`parse_rater_id`] with the product id's 16-bit
/// range: a plain base-10 integer in `[0, u16::MAX]`, everything else
/// rejected.
///
/// # Errors
///
/// Returns a human-readable message naming the field and the offending
/// token.
pub fn parse_product_id(field: &str) -> Result<ProductId, String> {
    // The range check proves the cast lossless.
    parse_integer_id(field, "product id", u64::from(u16::MAX)).map(|v| ProductId::new(v as u16))
}

fn parse_integer_id(field: &str, what: &str, max: u64) -> Result<u64, String> {
    let t = field.trim();
    match t.parse::<u64>() {
        Ok(v) if v <= max => Ok(v),
        Ok(v) => Err(format!("{what} {v} is out of range (maximum {max})")),
        // Not a plain non-negative integer. Parse as a float purely to
        // say *why* it was rejected.
        Err(_) => match t.parse::<f64>() {
            Ok(x) if x < 0.0 => Err(format!("{what} must be non-negative, found {t:?}")),
            Ok(_) => Err(format!(
                "{what} must be a plain integer in [0, {max}], found {t:?}"
            )),
            Err(e) => Err(format!("bad {what} {t:?}: {e}")),
        },
    }
}

/// Parses a day (fractional days since the horizon start).
///
/// Days must be finite and non-negative. `NaN`, infinities, and
/// negative times are rejected with an explicit error instead of being
/// saturated or passed through to corrupt window arithmetic downstream.
///
/// # Errors
///
/// Returns a human-readable message naming the offending token.
pub fn parse_day(field: &str) -> Result<Timestamp, String> {
    let t = field.trim();
    let x: f64 = t.parse().map_err(|e| format!("bad day {t:?}: {e}"))?;
    if x < 0.0 {
        return Err(format!("day must be non-negative, found {t:?}"));
    }
    Timestamp::new(x).map_err(|e| format!("bad day {t:?}: {e}"))
}

/// Parses a rating value on the 0–5 scale via [`RatingValue::new`] —
/// never the clamping constructor, so out-of-scale input is an error
/// the submitter sees, not a silent 5.0.
///
/// # Errors
///
/// Returns a human-readable message naming the offending token.
pub fn parse_value(field: &str) -> Result<RatingValue, String> {
    let t = field.trim();
    let x: f64 = t.parse().map_err(|e| format!("bad value {t:?}: {e}"))?;
    RatingValue::new(x).map_err(|e| format!("bad value {t:?}: {e}"))
}

/// Reads a dataset from CSV.
///
/// Accepts both 4-column (`rater,product,day,value`) and 5-column
/// (`…,source`) data; blank lines are skipped.
///
/// # Errors
///
/// Returns [`CsvError`] on I/O failures, a bad header, unparsable rows,
/// or out-of-domain values.
pub fn read_csv<R: Read>(reader: R) -> Result<RatingDataset, CsvError> {
    let mut lines = BufReader::new(reader).lines();
    let header = lines.next().transpose()?.unwrap_or_default();
    let normalized = header.trim().to_ascii_lowercase();
    if normalized != "rater,product,day,value,source" && normalized != "rater,product,day,value" {
        return Err(CsvError::Header { found: header });
    }

    let mut dataset = RatingDataset::new();
    for (idx, line) in lines.enumerate() {
        let line_no = idx + 2; // 1-based, after the header
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 4 && fields.len() != 5 {
            return Err(CsvError::Row {
                line: line_no,
                message: format!("expected 4 or 5 fields, found {}", fields.len()),
            });
        }
        let parse_num = |s: &str, what: &str| -> Result<f64, CsvError> {
            s.trim().parse::<f64>().map_err(|e| CsvError::Row {
                line: line_no,
                message: format!("bad {what} {s:?}: {e}"),
            })
        };
        let row_err = |message: String| CsvError::Row {
            line: line_no,
            message,
        };
        let rater = parse_rater_id(fields[0]).map_err(row_err)?;
        let product = parse_product_id(fields[1]).map_err(row_err)?;
        let time = parse_day(fields[2]).map_err(row_err)?;
        let value = parse_num(fields[3], "value")?;
        let source = match fields.get(4).map(|s| s.trim().to_ascii_lowercase()) {
            None => RatingSource::Fair,
            Some(s) if s == "fair" => RatingSource::Fair,
            Some(s) if s == "unfair" => RatingSource::Unfair,
            Some(s) => {
                return Err(CsvError::Row {
                    line: line_no,
                    message: format!("source must be 'fair' or 'unfair', found {s:?}"),
                })
            }
        };
        let value = RatingValue::new(value).map_err(|source| CsvError::Domain {
            line: line_no,
            source,
        })?;
        dataset.insert(Rating::new(rater, product, time, value), source);
    }
    Ok(dataset)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RatingDataset {
        let mut d = RatingDataset::new();
        d.insert(
            Rating::new(
                RaterId::new(1),
                ProductId::new(0),
                Timestamp::new(1.5).unwrap(),
                RatingValue::new(4.0).unwrap(),
            ),
            RatingSource::Fair,
        );
        d.insert(
            Rating::new(
                RaterId::new(2),
                ProductId::new(1),
                Timestamp::new(2.25).unwrap(),
                RatingValue::new(0.5).unwrap(),
            ),
            RatingSource::Unfair,
        );
        d
    }

    #[test]
    fn round_trip_preserves_everything_observable() {
        let original = sample();
        let csv = to_csv_string(&original);
        let restored = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(restored.len(), original.len());
        let pairs = original.iter().zip(restored.iter());
        for (a, b) in pairs {
            assert_eq!(a.rating(), b.rating());
            assert_eq!(a.source(), b.source());
        }
    }

    #[test]
    fn json_export_is_wellformed_and_ordered() {
        let json = to_json_string(&sample());
        assert_eq!(
            json,
            "[\n  {\"rater\":1,\"product\":0,\"day\":1.5,\"value\":4.0,\"source\":\"fair\"},\n  \
             {\"rater\":2,\"product\":1,\"day\":2.25,\"value\":0.5,\"source\":\"unfair\"}\n]\n"
        );
    }

    #[test]
    fn json_export_of_empty_dataset_is_empty_array() {
        assert_eq!(to_json_string(&RatingDataset::new()), "[\n]\n");
    }

    #[test]
    fn json_number_forces_float_shape_on_integral_values() {
        assert_eq!(json_number(10.0), "10.0");
        assert_eq!(json_number(1.5), "1.5");
    }

    #[test]
    fn json_number_or_null_handles_non_finite() {
        assert_eq!(json_number_or_null(2.5), "2.5");
        assert_eq!(json_number_or_null(10.0), "10.0");
        assert_eq!(json_number_or_null(f64::NAN), "null");
        assert_eq!(json_number_or_null(f64::INFINITY), "null");
        assert_eq!(json_number_or_null(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn json_string_escapes_quotes_and_backslashes() {
        assert_eq!(json_string(r#"say "hi""#), r#""say \"hi\"""#);
        assert_eq!(json_string(r"a\b"), r#""a\\b""#);
        // An already-escaped-looking input must be escaped again, not
        // passed through: the writer escapes *content*, not syntax.
        assert_eq!(json_string(r#"\""#), r#""\\\"""#);
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("a\rb"), "\"a\\rb\"");
        assert_eq!(json_string("a\tb"), "\"a\\tb\"");
        assert_eq!(json_string("a\u{8}b"), "\"a\\bb\"");
        assert_eq!(json_string("a\u{c}b"), "\"a\\fb\"");
        // Control characters without a short form use \u00XX.
        assert_eq!(json_string("a\u{0}b"), "\"a\\u0000b\"");
        assert_eq!(json_string("a\u{1f}b"), "\"a\\u001fb\"");
        // 0x7F (DEL) is not a JSON-mandated escape; it passes through.
        assert_eq!(json_string("a\u{7f}b"), "\"a\u{7f}b\"");
    }

    #[test]
    fn json_string_passes_non_ascii_through_as_utf8() {
        assert_eq!(json_string("café"), "\"café\"");
        assert_eq!(json_string("日本語"), "\"日本語\"");
        assert_eq!(json_string("emoji 🎉"), "\"emoji 🎉\"");
        // Mixed: the multibyte characters survive while the neighbors
        // still get escaped.
        assert_eq!(json_string("é\n\"日\""), "\"é\\n\\\"日\\\"\"");
    }

    #[test]
    fn json_string_plain_ascii_is_just_quoted() {
        assert_eq!(json_string(""), "\"\"");
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(
            json_string("with space / punct."),
            "\"with space / punct.\""
        );
    }

    #[test]
    fn four_column_import_defaults_to_fair() {
        let csv = "rater,product,day,value\n7,3,10.0,4.5\n";
        let d = read_csv(csv.as_bytes()).unwrap();
        assert_eq!(d.len(), 1);
        let entry = d.iter().next().unwrap();
        assert_eq!(entry.source(), RatingSource::Fair);
        assert_eq!(entry.value(), 4.5);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let csv = "rater,product,day,value\n\n7,3,10.0,4.5\n\n";
        assert_eq!(read_csv(csv.as_bytes()).unwrap().len(), 1);
    }

    #[test]
    fn bad_header_is_rejected() {
        let e = read_csv("who,what,when\n".as_bytes()).unwrap_err();
        assert!(matches!(e, CsvError::Header { .. }));
        assert!(e.to_string().contains("header"));
    }

    #[test]
    fn bad_row_reports_line_number() {
        let csv = "rater,product,day,value\n1,2,3\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        match e {
            CsvError::Row { line, .. } => assert_eq!(line, 2),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn out_of_scale_value_reports_domain_error() {
        let csv = "rater,product,day,value\n1,2,3.0,9.5\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(e, CsvError::Domain { line: 2, .. }));
        assert!(e.source().is_some());
    }

    #[test]
    fn bad_source_keyword_rejected() {
        let csv = "rater,product,day,value,source\n1,2,3.0,4.0,bogus\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn header_is_case_insensitive() {
        let csv = "Rater,Product,Day,Value,Source\n1,2,3.0,4.0,fair\n";
        assert_eq!(read_csv(csv.as_bytes()).unwrap().len(), 1);
    }

    /// The id-aliasing regression: every input the old float-then-cast
    /// path would have silently coerced onto another rater's identity
    /// must now be a row error naming the line.
    #[test]
    fn negative_rater_id_is_rejected_not_wrapped() {
        let csv = "rater,product,day,value\n-1,0,1.0,4.0\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        match e {
            CsvError::Row { line, ref message } => {
                assert_eq!(line, 2);
                assert!(message.contains("rater id"), "message: {message}");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn oversized_rater_id_is_rejected_not_saturated() {
        // u32::MAX + 1000: the old path saturated this onto rater
        // u32::MAX, silently merging it with the max legal identity.
        let csv = format!("rater,product,day,value\n{},0,1.0,4.0\n", 4_294_968_295u64);
        let e = read_csv(csv.as_bytes()).unwrap_err();
        assert!(
            matches!(e, CsvError::Row { line: 2, .. }),
            "wrong error: {e}"
        );
        assert!(e.to_string().contains("out of range"), "message: {e}");
    }

    #[test]
    fn fractional_rater_id_is_rejected_not_truncated() {
        // 7.9 used to truncate to rater 7 — a different identity.
        let csv = "rater,product,day,value\n7.9,0,1.0,4.0\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        assert!(
            matches!(e, CsvError::Row { line: 2, .. }),
            "wrong error: {e}"
        );
        assert!(e.to_string().contains("integer"), "message: {e}");
    }

    #[test]
    fn product_id_range_is_enforced() {
        let csv = "rater,product,day,value\n1,65536,1.0,4.0\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("product id"), "message: {e}");
        let csv = "rater,product,day,value\n1,-2,1.0,4.0\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        assert!(e.to_string().contains("non-negative"), "message: {e}");
    }

    #[test]
    fn max_legal_ids_round_trip() {
        let mut d = RatingDataset::new();
        d.insert(
            Rating::new(
                RaterId::new(u32::MAX),
                ProductId::new(u16::MAX),
                Timestamp::new(3.0).unwrap(),
                RatingValue::new(4.0).unwrap(),
            ),
            RatingSource::Fair,
        );
        let restored = read_csv(to_csv_string(&d).as_bytes()).unwrap();
        let entry = restored.iter().next().unwrap();
        assert_eq!(entry.rater(), RaterId::new(u32::MAX));
        assert_eq!(entry.rating().product(), ProductId::new(u16::MAX));
    }

    /// The day-validation regression: negatives and NaN parse as floats
    /// but are not times; both must be explicit row errors.
    #[test]
    fn negative_day_is_rejected() {
        let csv = "rater,product,day,value\n1,0,-2.5,4.0\n";
        let e = read_csv(csv.as_bytes()).unwrap_err();
        assert!(
            matches!(e, CsvError::Row { line: 2, .. }),
            "wrong error: {e}"
        );
        assert!(e.to_string().contains("non-negative"), "message: {e}");
    }

    #[test]
    fn nan_day_is_rejected() {
        for bad in ["NaN", "nan", "inf", "-inf"] {
            let csv = format!("rater,product,day,value\n1,0,{bad},4.0\n");
            let e = read_csv(csv.as_bytes()).unwrap_err();
            assert!(
                matches!(e, CsvError::Row { line: 2, .. }),
                "{bad}: wrong error: {e}"
            );
        }
    }

    #[test]
    fn field_parsers_accept_legal_forms() {
        assert_eq!(parse_rater_id(" 42 ").unwrap(), RaterId::new(42));
        assert_eq!(
            parse_rater_id(&u32::MAX.to_string()).unwrap(),
            RaterId::new(u32::MAX)
        );
        assert_eq!(parse_product_id("65535").unwrap(), ProductId::new(u16::MAX));
        assert_eq!(parse_day("12.5").unwrap(), Timestamp::new(12.5).unwrap());
        assert_eq!(parse_value("4.5").unwrap(), RatingValue::new(4.5).unwrap());
        assert!(parse_value("5.5").is_err());
        assert!(parse_value("NaN").is_err());
    }

    #[test]
    fn jsonl_object_parses_scalars_in_order() {
        let fields = parse_jsonl_object(
            r#"{"rater":17,"day":12.5,"source":"fair","ok":true,"gone":null,"neg":-3.25e2}"#,
        )
        .unwrap();
        assert_eq!(fields.len(), 6);
        assert_eq!(fields[0].0, "rater");
        assert_eq!(jsonl_field(&fields, "rater").unwrap().as_u64(), Some(17));
        assert_eq!(jsonl_field(&fields, "day").unwrap().as_f64(), Some(12.5));
        assert_eq!(
            jsonl_field(&fields, "source").unwrap().as_text(),
            Some("fair")
        );
        assert_eq!(jsonl_field(&fields, "ok").unwrap(), &JsonScalar::Bool(true));
        assert_eq!(jsonl_field(&fields, "gone").unwrap(), &JsonScalar::Null);
        assert_eq!(jsonl_field(&fields, "neg").unwrap().as_f64(), Some(-325.0));
        assert!(jsonl_field(&fields, "missing").is_none());
    }

    #[test]
    fn jsonl_numbers_keep_u64_bit_exactness() {
        // f64 bit patterns exceed 2^53: a reader that round-tripped
        // numbers through f64 would corrupt them.
        let bits = 0x3FF8_0000_0000_0001u64; // 1.5 + 1 ulp
        let fields = parse_jsonl_object(&format!("{{\"bits\":{bits}}}")).unwrap();
        assert_eq!(jsonl_field(&fields, "bits").unwrap().as_u64(), Some(bits));
    }

    #[test]
    fn jsonl_strings_unescape() {
        let fields = parse_jsonl_object(r#"{"s":"a\n\"b\"\\c\u0041"}"#).unwrap();
        assert_eq!(
            jsonl_field(&fields, "s").unwrap().as_text(),
            Some("a\n\"b\"\\cA")
        );
    }

    #[test]
    fn jsonl_round_trips_write_json_rows() {
        // The write side emits rows like write_json's; the reader must
        // accept them verbatim (minus the array punctuation).
        let json = to_json_string(&sample());
        let rows: Vec<&str> = json
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .map(|l| l.trim().trim_end_matches(','))
            .collect();
        assert_eq!(rows.len(), 2);
        let fields = parse_jsonl_object(rows[0]).unwrap();
        assert_eq!(jsonl_field(&fields, "rater").unwrap().as_u64(), Some(1));
        assert_eq!(jsonl_field(&fields, "day").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn jsonl_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,2]",
            "{\"a\":1} extra",
            "{\"a\":1,\"a\":2}",
            "{\"a\":{}}",
            "{\"a\":[1]}",
            "{\"a\":tru}",
            "{\"a\":\"unterminated}",
            "{\"a\":\"bad \\q escape\"}",
            "{\"a\":--1}",
            "{\"a\":1,}",
            "{a:1}",
        ] {
            assert!(parse_jsonl_object(bad).is_err(), "accepted {bad:?}");
        }
    }
}
