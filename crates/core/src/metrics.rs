//! The manipulation-power (MP) metric of the Rating Challenge.
//!
//! For each product, the challenge computes
//! `Δ_i = |R°_ag(t_i) − R_ag(t_i)|` for every 30-day period, where
//! `R°_ag` is the aggregated rating **with** unfair ratings and `R_ag`
//! **without** them. A product's score is the sum of its two largest `Δ`
//! values, and the overall MP is the sum over products. Counting only the
//! top two periods is what pushes rational attackers to concentrate their
//! unfair ratings into one or two months (paper Section III).

use crate::{
    AggregationScheme, CoreError, Days, EvalContext, ProductId, RatingDataset, SchemeOutcome,
    ScoringMode,
};
use std::collections::BTreeMap;
use std::fmt;

/// Parameters of the MP computation.
///
/// Defaults follow the paper: 30-day periods, two counted periods per
/// product.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MpParams {
    /// Length of a scoring period.
    pub period: Days,
    /// How many of the largest per-period deltas are summed per product.
    ///
    /// Effectively clamped to the number of finite deltas a product has:
    /// `top_k == 0` always yields MP 0, and `top_k > n` counts each of
    /// the `n` finite deltas exactly once. Non-finite deltas never
    /// compete (see [`mp_from_outcomes`]).
    pub top_k: usize,
    /// How checkpoint scores aggregate ratings (cumulative by default;
    /// see [`ScoringMode`]).
    pub scoring: ScoringMode,
}

impl MpParams {
    /// The paper's parameters: 30-day checkpoints, top-2 deltas,
    /// cumulative scoring.
    #[must_use]
    pub fn paper() -> Self {
        MpParams {
            period: Days::new_saturating(30.0),
            top_k: 2,
            scoring: ScoringMode::Cumulative,
        }
    }
}

impl Default for MpParams {
    fn default() -> Self {
        MpParams::paper()
    }
}

/// Per-product manipulation power.
#[derive(Debug, Clone, PartialEq)]
pub struct ProductMp {
    deltas: Vec<f64>,
    mp: f64,
}

impl ProductMp {
    /// Returns the per-period deltas `Δ_i` in period order.
    #[must_use]
    pub fn deltas(&self) -> &[f64] {
        &self.deltas
    }

    /// Returns the product's MP contribution (sum of the top-k deltas).
    #[must_use]
    pub const fn mp(&self) -> f64 {
        self.mp
    }
}

/// The full MP report for one attacked dataset under one scheme.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MpReport {
    per_product: BTreeMap<ProductId, ProductMp>,
    total: f64,
}

impl MpReport {
    /// Returns the overall MP value (sum over products).
    #[must_use]
    pub const fn total(&self) -> f64 {
        self.total
    }

    /// Returns the MP contribution of one product, or 0 if the product was
    /// not present.
    #[must_use]
    pub fn product_mp(&self, product: ProductId) -> f64 {
        self.per_product.get(&product).map_or(0.0, ProductMp::mp)
    }

    /// Returns the detailed per-product breakdown.
    #[must_use]
    pub fn detail(&self, product: ProductId) -> Option<&ProductMp> {
        self.per_product.get(&product)
    }

    /// Iterates over `(product, detail)` in product order.
    pub fn iter(&self) -> impl Iterator<Item = (ProductId, &ProductMp)> {
        self.per_product.iter().map(|(p, d)| (*p, d))
    }
}

impl fmt::Display for MpReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MP = {:.4} (", self.total)?;
        for (i, (p, d)) in self.per_product.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {:.4}", p, d.mp())?;
        }
        write!(f, ")")
    }
}

/// Computes the manipulation power an attack achieves against `scheme`.
///
/// `clean` is the dataset without unfair ratings, `attacked` the dataset
/// with them inserted. Both are aggregated per period on a shared horizon;
/// per-period deltas are combined per [`MpParams`].
///
/// Missing scores are handled as follows: a period where the attacked
/// dataset has no score contributes `Δ = 0`; a period where only the clean
/// dataset has no score (the attacker rated into a quiet month) is compared
/// against the clean product's overall mean, because a real system would
/// still display the last known aggregate.
///
/// # Errors
///
/// Returns [`CoreError::Empty`] if both datasets are empty.
pub fn manipulation_power(
    scheme: &dyn AggregationScheme,
    clean: &RatingDataset,
    attacked: &RatingDataset,
    params: &MpParams,
) -> Result<MpReport, CoreError> {
    let ctx = shared_context(clean, attacked, params.period)?.with_scoring(params.scoring);
    let clean_outcome = scheme.evaluate(clean, &ctx);
    let attacked_outcome = scheme.evaluate(attacked, &ctx);
    Ok(mp_from_outcomes(
        clean,
        &clean_outcome,
        attacked,
        &attacked_outcome,
        params,
    ))
}

/// Builds an [`EvalContext`] whose horizon covers both datasets.
///
/// # Errors
///
/// Returns [`CoreError::Empty`] if both datasets are empty.
pub fn shared_context(
    clean: &RatingDataset,
    attacked: &RatingDataset,
    period: Days,
) -> Result<EvalContext, CoreError> {
    // The attacked dataset is a superset in the intended workflow, but be
    // robust to either being the wider one.
    let ctx_a = EvalContext::from_dataset(attacked, period);
    let ctx_c = EvalContext::from_dataset(clean, period);
    match (ctx_c, ctx_a) {
        (Ok(c), Ok(a)) => {
            let start = c.horizon().start().min(a.horizon().start());
            let end = c.horizon().end().max(a.horizon().end());
            Ok(EvalContext::new(
                crate::TimeWindow::new(start, end)?,
                period,
            ))
        }
        (Ok(c), Err(_)) => Ok(c),
        (Err(_), Ok(a)) => Ok(a),
        (Err(e), Err(_)) => Err(e),
    }
}

/// Computes the MP report from already-evaluated outcomes.
///
/// Useful when the caller wants to reuse the clean outcome across many
/// attacked variants (the heuristic search of Procedure 2 does exactly
/// this).
#[must_use]
pub fn mp_from_outcomes(
    clean: &RatingDataset,
    clean_outcome: &SchemeOutcome,
    attacked: &RatingDataset,
    attacked_outcome: &SchemeOutcome,
    params: &MpParams,
) -> MpReport {
    let mut per_product = BTreeMap::new();
    let mut total = 0.0;
    for product in attacked.product_ids() {
        let fallback = clean.product(product).and_then(|tl| tl.mean_value());
        let attacked_scores = attacked_outcome.scores(product).unwrap_or(&[]);
        let clean_scores = clean_outcome.scores(product).unwrap_or(&[]);
        let n = attacked_scores.len().max(clean_scores.len());
        let mut deltas = Vec::with_capacity(n);
        for i in 0..n {
            let a = attacked_scores.get(i).copied().flatten();
            let c = clean_scores.get(i).copied().flatten();
            let delta = match (a, c) {
                (Some(a), Some(c)) => (a - c).abs(),
                (Some(a), None) => fallback.map_or(0.0, |m| (a - m).abs()),
                (None, _) => 0.0,
            };
            deltas.push(delta);
        }
        // Only finite deltas compete for the top-k (the stats::min/max
        // convention): a NaN delta — e.g. a scheme emitting NaN scores —
        // would sort above +inf under descending `total_cmp` and poison
        // the whole sum. `top_k` is clamped to the finite-delta count;
        // asking for more periods than exist counts every finite delta
        // once, and `top_k == 0` yields an MP of zero.
        let mut sorted: Vec<f64> = deltas.iter().copied().filter(|d| d.is_finite()).collect();
        sorted.sort_by(|x, y| y.total_cmp(x));
        let counted = params.top_k.min(sorted.len());
        let mp: f64 = sorted.iter().take(counted).sum();
        total += mp;
        per_product.insert(product, ProductMp { deltas, mp });
    }
    MpReport { per_product, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProductId, RaterId, Rating, RatingSource, RatingValue, Timestamp};

    /// A scheme that averages the raw rating values in each period.
    struct MeanScheme;

    impl AggregationScheme for MeanScheme {
        fn name(&self) -> &str {
            "mean"
        }

        fn evaluate(&self, dataset: &RatingDataset, ctx: &EvalContext) -> SchemeOutcome {
            let mut out = SchemeOutcome::new();
            for (pid, tl) in dataset.products() {
                let scores = ctx
                    .periods()
                    .iter()
                    .map(|w| tl.in_window(*w).mean_value())
                    .collect();
                out.insert_scores(pid, scores);
            }
            out
        }
    }

    fn rating(rater: u32, product: u16, day: f64, value: f64) -> Rating {
        Rating::new(
            RaterId::new(rater),
            ProductId::new(product),
            Timestamp::new(day).unwrap(),
            RatingValue::new(value).unwrap(),
        )
    }

    fn fair_dataset() -> RatingDataset {
        let mut d = RatingDataset::new();
        for day in 0..90 {
            d.insert(rating(day, 0, f64::from(day), 4.0), RatingSource::Fair);
        }
        d
    }

    #[test]
    fn no_attack_means_zero_mp() {
        let clean = fair_dataset();
        let report =
            manipulation_power(&MeanScheme, &clean, &clean.clone(), &MpParams::paper()).unwrap();
        assert_eq!(report.total(), 0.0);
    }

    #[test]
    fn downgrade_attack_produces_positive_mp() {
        let clean = fair_dataset();
        let mut attacked = clean.clone();
        for i in 0..30 {
            attacked.insert(
                rating(1000 + i, 0, 30.0 + f64::from(i), 0.0),
                RatingSource::Unfair,
            );
        }
        let report =
            manipulation_power(&MeanScheme, &clean, &attacked, &MpParams::paper()).unwrap();
        assert!(report.total() > 0.0);
        // All attack mass is in period 1 (days 30-60): delta there is
        // |mean(30x4 + 30x0) - 4| = 2, other periods are 0.
        let detail = report.detail(ProductId::new(0)).unwrap();
        assert!((detail.deltas()[1] - 2.0).abs() < 1e-12);
        assert!((report.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_caps_counted_periods() {
        let clean = fair_dataset();
        let mut attacked = clean.clone();
        // Attack all three periods equally.
        for period in 0..3u32 {
            for i in 0..30 {
                attacked.insert(
                    rating(
                        2000 + period * 100 + i,
                        0,
                        f64::from(period) * 30.0 + f64::from(i),
                        0.0,
                    ),
                    RatingSource::Unfair,
                );
            }
        }
        let report =
            manipulation_power(&MeanScheme, &clean, &attacked, &MpParams::paper()).unwrap();
        // Each period's delta is 2; only two are counted.
        assert!((report.total() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn attack_into_quiet_period_uses_fallback_mean() {
        // Clean data only in days 0..30; the attack lands in days 30..60.
        let mut clean = RatingDataset::new();
        for day in 0..30 {
            clean.insert(rating(day, 0, f64::from(day), 4.0), RatingSource::Fair);
        }
        let mut attacked = clean.clone();
        for i in 0..10 {
            attacked.insert(
                rating(500 + i, 0, 35.0 + f64::from(i), 0.0),
                RatingSource::Unfair,
            );
        }
        let report =
            manipulation_power(&MeanScheme, &clean, &attacked, &MpParams::paper()).unwrap();
        // The attacked period-1 mean is 0; the fallback is the clean mean 4.
        assert!((report.product_mp(ProductId::new(0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn nan_scores_do_not_poison_top_k() {
        // A NaN delta sorts above +inf under descending total_cmp; before
        // the finite-only filter it would win a top-k slot and turn the
        // whole MP into NaN.
        let clean = fair_dataset();
        let mut clean_outcome = SchemeOutcome::new();
        clean_outcome.insert_scores(ProductId::new(0), vec![Some(4.0), Some(4.0), Some(4.0)]);
        let mut attacked_outcome = SchemeOutcome::new();
        attacked_outcome.insert_scores(
            ProductId::new(0),
            vec![Some(f64::NAN), Some(2.0), Some(4.0)],
        );
        let report = mp_from_outcomes(
            &clean,
            &clean_outcome,
            &clean,
            &attacked_outcome,
            &MpParams::paper(),
        );
        assert!(report.total().is_finite());
        // The NaN delta is skipped; the finite deltas |2-4| = 2 and 0
        // fill the top-2.
        assert!((report.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_zero_counts_nothing() {
        let clean = fair_dataset();
        let mut attacked = clean.clone();
        for i in 0..30 {
            attacked.insert(
                rating(1000 + i, 0, 30.0 + f64::from(i), 0.0),
                RatingSource::Unfair,
            );
        }
        let params = MpParams {
            top_k: 0,
            ..MpParams::paper()
        };
        let report = manipulation_power(&MeanScheme, &clean, &attacked, &params).unwrap();
        assert_eq!(report.total(), 0.0);
    }

    #[test]
    fn top_k_beyond_delta_count_counts_each_delta_once() {
        let clean = fair_dataset();
        let mut attacked = clean.clone();
        // Attack all three periods equally: deltas are (2, 2, 2).
        for period in 0..3u32 {
            for i in 0..30 {
                attacked.insert(
                    rating(
                        2000 + period * 100 + i,
                        0,
                        f64::from(period) * 30.0 + f64::from(i),
                        0.0,
                    ),
                    RatingSource::Unfair,
                );
            }
        }
        let params = MpParams {
            top_k: 99,
            ..MpParams::paper()
        };
        let report = manipulation_power(&MeanScheme, &clean, &attacked, &params).unwrap();
        // take(99) on three deltas must count each exactly once, not
        // under- or over-report.
        assert!((report.total() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_datasets_error() {
        let empty = RatingDataset::new();
        assert!(manipulation_power(&MeanScheme, &empty, &empty, &MpParams::paper()).is_err());
    }

    #[test]
    fn report_display_mentions_total() {
        let clean = fair_dataset();
        let report =
            manipulation_power(&MeanScheme, &clean, &clean.clone(), &MpParams::paper()).unwrap();
        assert!(report.to_string().starts_with("MP = 0.0000"));
    }

    #[test]
    fn boosting_and_downgrading_both_count() {
        let mut clean = RatingDataset::new();
        for day in 0..30 {
            clean.insert(rating(day, 0, f64::from(day), 4.0), RatingSource::Fair);
            clean.insert(rating(day, 1, f64::from(day), 4.0), RatingSource::Fair);
        }
        let mut attacked = clean.clone();
        for i in 0..30 {
            attacked.insert(rating(900 + i, 0, f64::from(i), 0.0), RatingSource::Unfair);
            attacked.insert(rating(950 + i, 1, f64::from(i), 5.0), RatingSource::Unfair);
        }
        let report =
            manipulation_power(&MeanScheme, &clean, &attacked, &MpParams::paper()).unwrap();
        assert!(report.product_mp(ProductId::new(0)) > 0.0);
        assert!(report.product_mp(ProductId::new(1)) > 0.0);
        assert!(report.product_mp(ProductId::new(0)) > report.product_mp(ProductId::new(1)));
    }
}
