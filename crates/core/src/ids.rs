use std::fmt;

/// Identifier of a rater (a user who submits ratings).
///
/// Raters are the subjects of trust evaluation: the trust manager keeps one
/// beta-trust record per `RaterId`.
///
/// ```
/// use rrs_core::RaterId;
/// let r = RaterId::new(42);
/// assert_eq!(r.value(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RaterId(u32);

impl RaterId {
    /// Creates a rater identifier from a raw integer.
    #[must_use]
    pub const fn new(id: u32) -> Self {
        RaterId(id)
    }

    /// Returns the raw integer value.
    #[must_use]
    pub const fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for RaterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rater#{}", self.0)
    }
}

impl From<u32> for RaterId {
    fn from(id: u32) -> Self {
        RaterId(id)
    }
}

/// Identifier of a product (an object being rated).
///
/// The Rating Challenge of the paper used nine flat-panel TVs; products are
/// identified by small dense integers.
///
/// ```
/// use rrs_core::ProductId;
/// let p = ProductId::new(3);
/// assert_eq!(p.value(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProductId(u16);

impl ProductId {
    /// Creates a product identifier from a raw integer.
    #[must_use]
    pub const fn new(id: u16) -> Self {
        ProductId(id)
    }

    /// Returns the raw integer value.
    #[must_use]
    pub const fn value(self) -> u16 {
        self.0
    }

    /// Returns the raw value widened to `usize`, convenient for indexing.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProductId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "product#{}", self.0)
    }
}

impl From<u16> for ProductId {
    fn from(id: u16) -> Self {
        ProductId(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn rater_ids_order_by_raw_value() {
        let mut set = BTreeSet::new();
        set.insert(RaterId::new(5));
        set.insert(RaterId::new(1));
        set.insert(RaterId::new(3));
        let ordered: Vec<u32> = set.into_iter().map(RaterId::value).collect();
        assert_eq!(ordered, vec![1, 3, 5]);
    }

    #[test]
    fn product_index_matches_value() {
        assert_eq!(ProductId::new(7).index(), 7);
    }

    #[test]
    fn display_formats() {
        assert_eq!(RaterId::new(2).to_string(), "rater#2");
        assert_eq!(ProductId::new(2).to_string(), "product#2");
    }

    #[test]
    fn from_impls() {
        assert_eq!(RaterId::from(9), RaterId::new(9));
        assert_eq!(ProductId::from(9), ProductId::new(9));
    }
}
