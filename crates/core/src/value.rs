use crate::CoreError;
use std::fmt;

/// A validated rating value on the paper's 0–5 scale.
///
/// The inner value is guaranteed finite and within
/// [`RatingValue::SCALE_MIN`], [`RatingValue::SCALE_MAX`]. The original
/// rating data of the paper uses values between 0 and 5 with a fair-rating
/// mean around 4.
///
/// ```
/// use rrs_core::RatingValue;
/// # fn main() -> Result<(), rrs_core::CoreError> {
/// let v = RatingValue::new(4.5)?;
/// assert_eq!(v.get(), 4.5);
/// let clamped = RatingValue::new_clamped(7.3);
/// assert_eq!(clamped.get(), 5.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingValue(f64);

impl RatingValue {
    /// The smallest expressible rating.
    pub const SCALE_MIN: f64 = 0.0;
    /// The largest expressible rating.
    pub const SCALE_MAX: f64 = 5.0;

    /// Creates a rating value, validating the scale.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidValue`] if `value` is not finite or lies
    /// outside `[0, 5]`.
    pub fn new(value: f64) -> Result<Self, CoreError> {
        if value.is_finite() && (Self::SCALE_MIN..=Self::SCALE_MAX).contains(&value) {
            Ok(RatingValue(value))
        } else {
            Err(CoreError::InvalidValue { value })
        }
    }

    /// Creates a rating value, clamping out-of-range inputs to the scale.
    ///
    /// Non-finite inputs clamp to the scale midpoint. This is the
    /// constructor attack generators use: a sampled Gaussian value may fall
    /// outside the scale and must be expressible as the nearest legal
    /// rating, exactly as a human attacker would round it.
    #[must_use]
    pub fn new_clamped(value: f64) -> Self {
        if value.is_nan() {
            return RatingValue((Self::SCALE_MIN + Self::SCALE_MAX) / 2.0);
        }
        RatingValue(value.clamp(Self::SCALE_MIN, Self::SCALE_MAX))
    }

    /// Returns the inner floating-point value.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Returns the value normalized to `[0, 1]`, as used by beta-reputation
    /// models.
    #[must_use]
    pub fn normalized(self) -> f64 {
        (self.0 - Self::SCALE_MIN) / (Self::SCALE_MAX - Self::SCALE_MIN)
    }

    /// Rounds to the nearest integer star rating (0, 1, ..., 5).
    #[must_use]
    pub fn to_stars(self) -> u8 {
        self.0.round() as u8
    }
}

impl fmt::Display for RatingValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

impl Eq for RatingValue {}

impl Ord for RatingValue {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // The constructor guarantees the inner value is never NaN, so
        // total_cmp agrees with the usual order.
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for RatingValue {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TryFrom<f64> for RatingValue {
    type Error = CoreError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        RatingValue::new(value)
    }
}

impl From<RatingValue> for f64 {
    fn from(value: RatingValue) -> Self {
        value.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::any_f64;
    use crate::{prop_assert, prop_assert_eq, props};

    #[test]
    fn new_rejects_out_of_scale() {
        assert!(RatingValue::new(-0.1).is_err());
        assert!(RatingValue::new(5.1).is_err());
        assert!(RatingValue::new(f64::NAN).is_err());
        assert!(RatingValue::new(f64::INFINITY).is_err());
    }

    #[test]
    fn new_accepts_bounds() {
        assert_eq!(RatingValue::new(0.0).unwrap().get(), 0.0);
        assert_eq!(RatingValue::new(5.0).unwrap().get(), 5.0);
    }

    #[test]
    fn clamped_handles_nan() {
        assert_eq!(RatingValue::new_clamped(f64::NAN).get(), 2.5);
    }

    #[test]
    fn normalized_spans_unit_interval() {
        assert_eq!(RatingValue::new(0.0).unwrap().normalized(), 0.0);
        assert_eq!(RatingValue::new(5.0).unwrap().normalized(), 1.0);
        assert_eq!(RatingValue::new(2.5).unwrap().normalized(), 0.5);
    }

    #[test]
    fn stars_round() {
        assert_eq!(RatingValue::new(3.4).unwrap().to_stars(), 3);
        assert_eq!(RatingValue::new(3.5).unwrap().to_stars(), 4);
    }

    #[test]
    fn ordering_is_consistent() {
        let a = RatingValue::new(1.0).unwrap();
        let b = RatingValue::new(4.0).unwrap();
        assert!(a < b);
        assert_eq!(a.cmp(&b), std::cmp::Ordering::Less);
    }

    props! {
        #[test]
        fn clamped_always_in_scale(x in any_f64()) {
            let v = RatingValue::new_clamped(x);
            prop_assert!(v.get() >= RatingValue::SCALE_MIN);
            prop_assert!(v.get() <= RatingValue::SCALE_MAX);
        }

        #[test]
        fn new_round_trips(x in 0.0f64..=5.0) {
            let v = RatingValue::new(x).unwrap();
            prop_assert_eq!(f64::from(v), x);
        }

        #[test]
        fn normalized_in_unit_interval(x in 0.0f64..=5.0) {
            let n = RatingValue::new(x).unwrap().normalized();
            prop_assert!((0.0..=1.0).contains(&n));
        }
    }
}
