//! Deterministic pseudo-random generation for the whole workspace.
//!
//! Every stochastic component in `rrs` — fair-data generation, the attack
//! generator, detector test fixtures, the evaluation suite — draws from the
//! generator defined here instead of an external crate. Two things motivate
//! carrying ~100 lines of RNG in-tree:
//!
//! 1. **Hermeticity.** The workspace builds and tests with zero registry
//!    dependencies, so an offline checkout is always a working checkout.
//! 2. **Reproducibility.** `rand::StdRng` documents its algorithm as
//!    unspecified and has changed it across versions; the recorded
//!    `results/` CSVs and `EXPERIMENTS.md` verdicts are only meaningful if
//!    seed 42 produces the same stream forever. [`Xoshiro256pp`] is a fixed,
//!    published algorithm (Blackman & Vigna's xoshiro256++ seeded through
//!    splitmix64), locked by golden-value tests below.
//!
//! The [`RrsRng`] trait deliberately mirrors the slice of the `rand` 0.8 API
//! the codebase used (`gen`, `gen_range`, `gen_bool`, plus [`SliceRandom`]
//! for `shuffle`/`choose`), so generic sampling code reads identically.

use std::ops::{Range, RangeInclusive};

/// Multiplier mapping the top 53 bits of a `u64` onto `[0, 1)`.
const F64_UNIT_SCALE: f64 = 1.0 / (1u64 << 53) as f64;

/// A deterministic random-number generator.
///
/// The single required method is [`next_u64`](RrsRng::next_u64); everything
/// else derives from it, so alternative generators (e.g. a counting stub in
/// tests) only implement one method.
pub trait RrsRng {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53-bit resolution.
    fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * F64_UNIT_SCALE
    }

    /// Draws a value of type `T` from its natural uniform distribution
    /// (`f64` in `[0, 1)`, integers over their full range, fair `bool`).
    fn gen<T: UnitSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must lie in [0, 1]");
        self.f64_unit() < p
    }

    /// Draws a uniform `usize` from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi <= lo`.
    fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty integer range {lo}..{hi}");
        lo + uniform_u64_below(self, (hi - lo) as u64) as usize
    }

    /// Draws a uniform `f64` from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or either bound is non-finite.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && hi > lo,
            "empty or non-finite range {lo}..{hi}"
        );
        let x = lo + (hi - lo) * self.f64_unit();
        // Guard the open upper bound against rounding in `lo + (hi-lo)*u`.
        if x < hi {
            x
        } else {
            lo
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range_usize(0, i + 1);
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if `slice` is empty.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range_usize(0, slice.len())])
        }
    }
}

impl<R: RrsRng + ?Sized> RrsRng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types drawable from their natural uniform distribution via
/// [`RrsRng::gen`].
pub trait UnitSample: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RrsRng + ?Sized>(rng: &mut R) -> Self;
}

impl UnitSample for f64 {
    fn sample<R: RrsRng + ?Sized>(rng: &mut R) -> f64 {
        rng.f64_unit()
    }
}

impl UnitSample for u64 {
    fn sample<R: RrsRng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl UnitSample for u32 {
    fn sample<R: RrsRng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl UnitSample for u8 {
    fn sample<R: RrsRng + ?Sized>(rng: &mut R) -> u8 {
        (rng.next_u64() >> 56) as u8
    }
}

impl UnitSample for bool {
    fn sample<R: RrsRng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

/// Ranges usable with [`RrsRng::gen_range`].
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RrsRng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RrsRng + ?Sized>(self, rng: &mut R) -> f64 {
        rng.range_f64(self.start, self.end)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RrsRng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(
            lo.is_finite() && hi.is_finite() && hi >= lo,
            "empty or non-finite range {lo}..={hi}"
        );
        let x = lo + (hi - lo) * rng.f64_unit();
        x.clamp(lo, hi)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RrsRng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.end > self.start, "empty integer range");
                self.start
                    + uniform_u64_below(rng, (self.end - self.start) as u64) as $t
            }
        }

        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RrsRng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(hi >= lo, "empty integer range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_u64_below(rng, span + 1) as $t
            }
        }
    )+};
}

int_sample_range!(usize, u64, u32, u16, u8);

/// Unbiased uniform draw from `[0, n)` by Lemire's widening-multiply
/// rejection method. `n` must be nonzero.
fn uniform_u64_below<R: RrsRng + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let threshold = n.wrapping_neg() % n;
    loop {
        let wide = u128::from(rng.next_u64()) * u128::from(n);
        if wide as u64 >= threshold {
            return (wide >> 64) as u64;
        }
    }
}

/// Slice adaptor providing `shuffle`/`choose` method syntax, mirroring
/// `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Shuffles the slice in place.
    fn shuffle<R: RrsRng + ?Sized>(&mut self, rng: &mut R);

    /// Picks a uniformly random element, or `None` if the slice is empty.
    fn choose<R: RrsRng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RrsRng + ?Sized>(&mut self, rng: &mut R) {
        RrsRng::shuffle(rng, self);
    }

    fn choose<R: RrsRng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        RrsRng::choose(rng, self)
    }
}

/// The workspace's standard generator: xoshiro256++ seeded via splitmix64.
///
/// 256 bits of state, period 2²⁵⁶ − 1, passes BigCrush; the exact algorithm
/// of Blackman & Vigna's reference implementation, locked forever by the
/// golden-value tests in this module. Construct with
/// [`seed_from_u64`](Xoshiro256pp::seed_from_u64) — the same entry point
/// `rand::StdRng` offered, so seeds recorded in configs and docs carry over.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Builds a generator whose 256-bit state is filled by four successive
    /// outputs of a splitmix64 stream started at `seed`.
    ///
    /// Splitmix64 is a bijection pushed through avalanche mixing, so any
    /// `u64` seed — including 0 — yields a full-entropy, nonzero state.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        Self { s }
    }
}

impl RrsRng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.s;
        let result = (s0.wrapping_add(s3)).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let s2 = s2 ^ s0;
        let s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        self.s = [s0, s1, s2 ^ t, s3.rotate_left(45)];
        result
    }
}

/// Derives an independent per-cell seed from `(master, cell)`.
///
/// Parallel grids (see [`crate::par`]) must not share one mutable RNG —
/// the draw order would depend on scheduling. Instead each cell seeds its
/// own [`Xoshiro256pp`] from `derive_seed(master_seed, cell_index)`: the
/// master seed is avalanche-mixed through splitmix64, XOR-combined with
/// the cell index, and mixed again, so neighbouring cell indices get
/// statistically unrelated streams while the mapping stays a pure
/// function of its inputs.
#[must_use]
pub fn derive_seed(master: u64, cell: u64) -> u64 {
    let mut state = master;
    let mixed_master = splitmix64(&mut state);
    let mut state = mixed_master ^ cell;
    splitmix64(&mut state)
}

/// One step of the splitmix64 stream (Steele, Lea & Flood's mixer).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First 8 outputs for seed 42, computed independently from the
    /// published splitmix64 + xoshiro256++ reference algorithms. Any change
    /// to these bytes silently invalidates every recorded experiment.
    const GOLDEN_SEED_42: [u64; 8] = [
        0xD076_4D4F_4476_689F,
        0x519E_4174_576F_3791,
        0xFBE0_7CFB_0C24_ED8C,
        0xB37D_9F60_0CD8_35B8,
        0xCB23_1C38_7484_6A73,
        0x968D_9F00_4E50_DE7D,
        0x2017_18FF_221A_3556,
        0x9AE9_4E07_0ED8_CB46,
    ];

    const GOLDEN_SEED_0: [u64; 3] = [
        0x5317_5D61_490B_23DF,
        0x61DA_6F3D_C380_D507,
        0x5C0F_DF91_EC9A_7BFC,
    ];

    #[test]
    fn golden_values_seed_42() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let got: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_eq!(got, GOLDEN_SEED_42, "xoshiro256++ stream drifted");
    }

    #[test]
    fn golden_values_seed_0() {
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let got: Vec<u64> = (0..3).map(|_| rng.next_u64()).collect();
        assert_eq!(got, GOLDEN_SEED_0);
    }

    /// Locks the `(master, cell)` → seed mapping the same way the stream
    /// goldens lock the generator: recorded parallel-grid results depend
    /// on these exact values.
    #[test]
    fn derive_seed_golden_values() {
        assert_eq!(derive_seed(42, 0), 0x57E1_FABA_6510_7204);
        assert_eq!(derive_seed(42, 1), 0xF34F_E924_8C93_42E5);
        assert_eq!(derive_seed(42, 2), 0x7253_9538_8690_AE46);
        assert_eq!(derive_seed(0, 0), 0xA706_DD2F_4D19_7E6F);
        assert_eq!(derive_seed(7, 1000), 0x5E2C_964F_7D55_A4B6);
    }

    #[test]
    fn derive_seed_is_injective_on_small_grids() {
        let mut seen = std::collections::BTreeSet::new();
        for master in 0..16u64 {
            for cell in 0..64u64 {
                assert!(seen.insert(derive_seed(master, cell)));
            }
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_unit_in_half_open_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = rng.f64_unit();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_unit_mean_near_half() {
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.f64_unit()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_integer_covers_all_and_stays_in_bounds() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let k = rng.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            seen[k - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never drawn: {seen:?}");
    }

    #[test]
    fn gen_range_inclusive_reaches_endpoints() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..200 {
            match rng.gen_range(0u32..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                1 | 2 => {}
                other => panic!("out of range: {other}"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_range_f64_stays_in_half_open_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..4.0);
            assert!((-2.5..4.0).contains(&x), "{x}");
        }
    }

    #[test]
    #[should_panic(expected = "empty integer range")]
    fn gen_range_rejects_empty() {
        let _ = Xoshiro256pp::seed_from_u64(0).gen_range(5usize..5);
    }

    #[test]
    fn shuffle_preserves_multiset_and_eventually_moves_elements() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let original: Vec<u32> = (0..20).collect();
        let mut moved = false;
        for _ in 0..10 {
            let mut v = original.clone();
            v.shuffle(&mut rng);
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, original);
            moved |= v != original;
        }
        assert!(moved, "ten shuffles of 20 elements never permuted");
    }

    #[test]
    fn choose_is_none_on_empty_and_in_slice_otherwise() {
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let v = [10u8, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let hits = (0..40_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 40_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn trait_object_free_generic_dispatch_works_through_mut_ref() {
        fn draw<R: RrsRng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let a = draw(&mut rng);
        let b = draw(&mut &mut rng);
        assert!(a != b && (0.0..1.0).contains(&a) && (0.0..1.0).contains(&b));
    }
}
