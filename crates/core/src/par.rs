//! Deterministic parallel execution substrate.
//!
//! Every parallel fan-out in the workspace goes through [`par_map`]: a
//! `std::thread::scope`-based bounded worker pool whose results are
//! returned **in input order** regardless of completion order. Combined
//! with per-cell seed derivation ([`crate::rng::derive_seed`]) this makes
//! thread count a pure throughput knob: `RRS_THREADS=1` and
//! `RRS_THREADS=8` produce bit-identical outputs.
//!
//! Guarantees:
//!
//! * **Ordering** — `par_map(items, f)[i] == f(i, &items[i])` always; the
//!   merge step reorders worker results by input index.
//! * **Serial equivalence** — with one thread (or one item) the exact
//!   sequential iterator path runs; no threads are spawned.
//! * **No nested explosion** — a `par_map` issued from inside a worker
//!   runs serially on that worker, so recursive fan-outs (a parallel
//!   suite whose experiments themselves call `par_map`) are bounded by a
//!   single pool rather than multiplying.
//! * **No shared mutable state** — workers communicate only through the
//!   atomic work index and their private result buffers.
//!
//! Thread count resolution order: test/bench override ([`with_threads`])
//! → the `RRS_THREADS` environment variable → `min(available cores, 8)`.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Upper bound applied to the auto-detected core count. Keeps the default
/// pool modest on many-core machines; raise explicitly via `RRS_THREADS`.
const DEFAULT_MAX_THREADS: usize = 8;

/// Process-wide thread-count override installed by [`with_threads`].
/// Zero means "no override"; reads are relaxed because the value is a
/// pure tuning knob — results are identical at any thread count.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_threads`] callers so concurrent tests cannot
/// interleave their overrides.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

thread_local! {
    /// Set inside pool workers so nested [`par_map`] calls degrade to the
    /// serial path instead of spawning a second generation of threads.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Returns the worker-pool size [`par_map`] will use.
///
/// Resolution order: the [`with_threads`] override, then the
/// `RRS_THREADS` environment variable (values `< 1` or unparsable fall
/// through), then `min(available_parallelism, 8)`.
#[must_use]
pub fn thread_count() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    if let Ok(raw) = std::env::var("RRS_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get().min(DEFAULT_MAX_THREADS))
}

/// Runs `f` with the pool size forced to `threads` (minimum 1), then
/// restores the previous setting.
///
/// This exists for tests and benches that compare serial against parallel
/// execution in-process without mutating the environment; `RRS_THREADS`
/// remains the user-facing knob. Callers are serialized by a global lock,
/// and the previous override is restored even if `f` panics.
pub fn with_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    let _serialize = OVERRIDE_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.store(self.0, Ordering::Relaxed);
        }
    }
    let _restore = Restore(OVERRIDE.swap(threads.max(1), Ordering::Relaxed));
    f()
}

/// Maps `f` over `items` on a bounded scoped-thread pool, returning the
/// results in input order.
///
/// `f` receives `(index, &item)` so each cell can derive its own seed
/// from the index (see [`crate::rng::derive_seed`]). Work is handed out
/// through a shared atomic counter, so threads stay busy regardless of
/// per-item cost; each worker buffers `(index, result)` pairs privately
/// and the merge step writes them back by index after all workers join.
///
/// With one thread, one item, or when called from inside another
/// `par_map` worker, the exact serial path runs instead.
///
/// # Panics
///
/// If a worker panics, the panic payload is re-raised on the calling
/// thread after the remaining workers finish.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::new();
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            handles.push(scope.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(index) else { break };
                    local.push((index, f(index, item)));
                }
                local
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (index, value) in local {
                        slots[index] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let out: Vec<U> = slots.into_iter().flatten().collect();
    assert_eq!(out.len(), items.len(), "par_map merge lost a result slot");
    out
}

/// Like [`par_map`], but consumes `items` and hands each one to `f`
/// **by value** — for pipelines that move per-item state through the
/// pool (e.g. the online detectors advancing one owned `ProductState`
/// per product) without interior mutability at the call site.
///
/// The [`par_map`] guarantees carry over: results come back in input
/// order, one thread (or a nested call) runs the exact serial
/// `into_iter` path, and each item is consumed exactly once because the
/// atomic dispenser hands every index to exactly one worker.
///
/// # Panics
///
/// If a worker panics, the panic payload is re-raised on the calling
/// thread after the remaining workers finish.
pub fn par_map_owned<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let threads = thread_count().min(items.len());
    if threads <= 1 || IN_WORKER.with(Cell::get) {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }

    // Each item waits in its own cell until the index dispenser hands
    // its slot to exactly one worker, which takes the value out. The
    // per-cell Mutex is uncontended by construction — it only makes the
    // ownership handoff expressible without `unsafe`.
    let cells: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<U>> = Vec::new();
    slots.resize_with(cells.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            let cells = &cells;
            handles.push(scope.spawn(move || {
                IN_WORKER.with(|flag| flag.set(true));
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(cell) = cells.get(index) else { break };
                    let Some(item) = cell
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                    else {
                        break;
                    };
                    local.push((index, f(index, item)));
                }
                local
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(local) => {
                    for (index, value) in local {
                        slots[index] = Some(value);
                    }
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });

    let expected = slots.len();
    let out: Vec<U> = slots.into_iter().flatten().collect();
    assert_eq!(
        out.len(),
        expected,
        "par_map_owned merge lost a result slot"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let out = with_threads(8, || par_map(&items, |i, &x| (i as u64, x * 3)));
        for (i, (idx, tripled)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*tripled, items[i] * 3);
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let items: Vec<f64> = (0..100).map(|i| f64::from(i) * 0.37).collect();
        let work = |i: usize, x: &f64| (x.sin() * x.cos()).mul_add(i as f64, *x);
        let serial = with_threads(1, || par_map(&items, work));
        let parallel = with_threads(8, || par_map(&items, work));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let none: Vec<u32> = Vec::new();
        assert!(par_map(&none, |_, &x| x).is_empty());
        assert_eq!(with_threads(8, || par_map(&[41], |_, &x| x + 1)), vec![42]);
    }

    #[test]
    fn nested_calls_run_serially_without_deadlock() {
        let outer: Vec<usize> = (0..8).collect();
        let out = with_threads(4, || {
            par_map(&outer, |_, &i| {
                let inner: Vec<usize> = (0..16).collect();
                par_map(&inner, |_, &j| i * 100 + j).iter().sum::<usize>()
            })
        });
        let expected: Vec<usize> = outer.iter().map(|&i| 16 * i * 100 + 120).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn override_takes_priority_and_restores() {
        let before = thread_count();
        let inside = with_threads(3, thread_count);
        assert_eq!(inside, 3);
        assert_eq!(thread_count(), before);
    }

    #[test]
    fn owned_map_moves_each_item_exactly_once_in_order() {
        let items: Vec<String> = (0..257).map(|i| format!("item-{i}")).collect();
        let expected = items.clone();
        let out = with_threads(8, || {
            par_map_owned(items, |i, s| {
                // `s` is owned: mutate and return it to prove the move.
                assert_eq!(s, format!("item-{i}"));
                s
            })
        });
        assert_eq!(out, expected);
    }

    #[test]
    fn owned_map_parallel_matches_serial_exactly() {
        let make = || (0..100u64).map(|i| vec![i, i * 2]).collect::<Vec<_>>();
        let work = |i: usize, v: Vec<u64>| v.iter().sum::<u64>() + i as u64;
        let serial = with_threads(1, || par_map_owned(make(), work));
        let parallel = with_threads(8, || par_map_owned(make(), work));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map(&items, |_, &x| {
                    assert!(x != 17, "boom");
                    x
                })
            })
        });
        assert!(result.is_err());
    }
}
