//! Ground-truth bookkeeping and detection-quality scoring.
//!
//! The Rating Challenge gives the simulation something commercial rating
//! data never has: exact knowledge of which ratings are unfair. This module
//! turns a defense scheme's suspicion marks into standard detection-quality
//! numbers against that truth.

use crate::{RatingDataset, RatingId};
use std::collections::BTreeSet;
use std::fmt;

/// The set of ratings known to be unfair.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GroundTruth {
    unfair: BTreeSet<RatingId>,
    total: usize,
}

impl GroundTruth {
    /// Extracts the ground truth from a labeled dataset.
    #[must_use]
    pub fn from_dataset(dataset: &RatingDataset) -> Self {
        GroundTruth {
            unfair: dataset.unfair_ids().into_iter().collect(),
            total: dataset.len(),
        }
    }

    /// Returns `true` if the rating is unfair.
    #[must_use]
    pub fn is_unfair(&self, id: RatingId) -> bool {
        self.unfair.contains(&id)
    }

    /// Returns the number of unfair ratings.
    #[must_use]
    pub fn unfair_count(&self) -> usize {
        self.unfair.len()
    }

    /// Returns the total number of ratings in the labeled dataset.
    #[must_use]
    pub const fn total_count(&self) -> usize {
        self.total
    }

    /// Scores a set of suspicion marks against this truth.
    #[must_use]
    pub fn score(&self, marked: &BTreeSet<RatingId>) -> ConfusionCounts {
        let tp = marked.iter().filter(|id| self.unfair.contains(id)).count();
        let fp = marked.len() - tp;
        let fn_ = self.unfair.len() - tp;
        let tn = self
            .total
            .saturating_sub(self.unfair.len())
            .saturating_sub(fp);
        ConfusionCounts { tp, fp, fn_, tn }
    }
}

/// Standard binary-detection confusion counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionCounts {
    /// Unfair ratings correctly marked suspicious.
    pub tp: usize,
    /// Fair ratings wrongly marked suspicious (false alarms).
    pub fp: usize,
    /// Unfair ratings that escaped detection.
    pub fn_: usize,
    /// Fair ratings correctly left unmarked.
    pub tn: usize,
}

impl ConfusionCounts {
    /// Precision: fraction of marks that were actually unfair.
    ///
    /// Returns 1.0 when nothing was marked (vacuously precise).
    #[must_use]
    pub fn precision(&self) -> f64 {
        let marked = self.tp + self.fp;
        if marked == 0 {
            1.0
        } else {
            self.tp as f64 / marked as f64
        }
    }

    /// Recall (detection rate): fraction of unfair ratings marked.
    ///
    /// Returns 1.0 when there was nothing to detect.
    #[must_use]
    pub fn recall(&self) -> f64 {
        let unfair = self.tp + self.fn_;
        if unfair == 0 {
            1.0
        } else {
            self.tp as f64 / unfair as f64
        }
    }

    /// False-alarm rate: fraction of fair ratings marked suspicious.
    #[must_use]
    pub fn false_alarm_rate(&self) -> f64 {
        let fair = self.fp + self.tn;
        if fair == 0 {
            0.0
        } else {
            self.fp as f64 / fair as f64
        }
    }

    /// The harmonic mean of precision and recall.
    #[must_use]
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        // lint:allow(float-eq): both terms are non-negative, so the sum is exactly zero only when both are
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

impl fmt::Display for ConfusionCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tp={} fp={} fn={} tn={} (precision {:.3}, recall {:.3}, false alarm {:.3})",
            self.tp,
            self.fp,
            self.fn_,
            self.tn,
            self.precision(),
            self.recall(),
            self.false_alarm_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProductId, RaterId, Rating, RatingSource, RatingValue, Timestamp};

    fn build() -> (RatingDataset, Vec<RatingId>, Vec<RatingId>) {
        let mut d = RatingDataset::new();
        let mut fair = Vec::new();
        let mut unfair = Vec::new();
        for i in 0..8u32 {
            let r = Rating::new(
                RaterId::new(i),
                ProductId::new(0),
                Timestamp::new(f64::from(i)).unwrap(),
                RatingValue::new(4.0).unwrap(),
            );
            fair.push(d.insert(r, RatingSource::Fair));
        }
        for i in 0..4u32 {
            let r = Rating::new(
                RaterId::new(100 + i),
                ProductId::new(0),
                Timestamp::new(f64::from(i)).unwrap(),
                RatingValue::new(0.0).unwrap(),
            );
            unfair.push(d.insert(r, RatingSource::Unfair));
        }
        (d, fair, unfair)
    }

    #[test]
    fn perfect_detection() {
        let (d, _, unfair) = build();
        let truth = GroundTruth::from_dataset(&d);
        let marks: BTreeSet<_> = unfair.into_iter().collect();
        let c = truth.score(&marks);
        assert_eq!(c.tp, 4);
        assert_eq!(c.fp, 0);
        assert_eq!(c.fn_, 0);
        assert_eq!(c.tn, 8);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.false_alarm_rate(), 0.0);
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn no_marks_is_vacuously_precise() {
        let (d, _, _) = build();
        let truth = GroundTruth::from_dataset(&d);
        let c = truth.score(&BTreeSet::new());
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.false_alarm_rate(), 0.0);
    }

    #[test]
    fn mixed_marks() {
        let (d, fair, unfair) = build();
        let truth = GroundTruth::from_dataset(&d);
        // Mark 2 unfair and 2 fair.
        let marks: BTreeSet<_> = unfair[..2]
            .iter()
            .chain(fair[..2].iter())
            .copied()
            .collect();
        let c = truth.score(&marks);
        assert_eq!(c.tp, 2);
        assert_eq!(c.fp, 2);
        assert_eq!(c.fn_, 2);
        assert_eq!(c.tn, 6);
        assert!((c.precision() - 0.5).abs() < 1e-12);
        assert!((c.recall() - 0.5).abs() < 1e-12);
        assert!((c.false_alarm_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn truth_counts() {
        let (d, _, _) = build();
        let truth = GroundTruth::from_dataset(&d);
        assert_eq!(truth.unfair_count(), 4);
        assert_eq!(truth.total_count(), 12);
    }

    #[test]
    fn display_is_informative() {
        let c = ConfusionCounts {
            tp: 1,
            fp: 2,
            fn_: 3,
            tn: 4,
        };
        let s = c.to_string();
        assert!(s.contains("tp=1"));
        assert!(s.contains("precision"));
    }
}
