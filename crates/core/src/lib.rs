//! Core types for feedback-based rating systems.
//!
//! This crate provides the vocabulary shared by every other `rrs` crate:
//!
//! * identifiers for raters and products ([`RaterId`], [`ProductId`]),
//! * validated rating values on the 0–5 scale ([`RatingValue`]),
//! * a continuous time model in fractional days ([`Timestamp`], [`Days`],
//!   [`TimeWindow`]),
//! * individual ratings and their fair/unfair provenance ([`Rating`],
//!   [`RatingSource`]),
//! * the [`RatingDataset`] container holding per-product timelines,
//!   backed by pluggable storage engines ([`store`]): a sharded
//!   struct-of-arrays [`ColumnarStore`] and the [`RowStore`] oracle,
//! * the manipulation-power (MP) metric of Feng et al. (ICDCS 2008)
//!   ([`metrics`]),
//! * the [`AggregationScheme`] trait implemented by defense schemes, and
//! * ground-truth bookkeeping for detection quality ([`labels`]).
//!
//! # Example
//!
//! ```
//! use rrs_core::{ProductId, RaterId, Rating, RatingDataset, RatingSource, RatingValue, Timestamp};
//!
//! # fn main() -> Result<(), rrs_core::CoreError> {
//! let mut dataset = RatingDataset::new();
//! let rating = Rating::new(
//!     RaterId::new(1),
//!     ProductId::new(0),
//!     Timestamp::new(3.5)?,
//!     RatingValue::new(4.0)?,
//! );
//! dataset.insert(rating, RatingSource::Fair);
//! assert_eq!(dataset.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod check;
mod dataset;
mod error;
mod ids;
pub mod io;
pub mod labels;
pub mod metrics;
pub mod par;
mod rating;
pub mod rng;
mod scheme;
pub mod store;
pub mod stream;
mod time;
mod value;

pub use dataset::{
    DatasetView, ProductTimeline, RatingDataset, RatingEntry, RatingId, TimelineView,
};
pub use error::CoreError;
pub use ids::{ProductId, RaterId};
pub use labels::{ConfusionCounts, GroundTruth};
pub use metrics::{
    manipulation_power, mp_from_outcomes, shared_context, MpParams, MpReport, ProductMp,
};
pub use rating::{Rating, RatingSource};
pub use scheme::{AggregationScheme, EvalContext, SchemeOutcome, ScoringMode};
pub use store::{ColumnarStore, RatingStore, RowStore};
pub use time::{Days, TimeWindow, Timestamp};
pub use value::RatingValue;
