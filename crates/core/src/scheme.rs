use crate::{CoreError, Days, ProductId, RaterId, RatingDataset, RatingId, TimeWindow, Timestamp};
use std::collections::{BTreeMap, BTreeSet};

/// How a scheme turns a rating stream into one score per checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoringMode {
    /// The score at checkpoint `t_i` aggregates **all ratings up to
    /// `t_i`** — the running average a shopping site actually displays,
    /// and the reading of the paper's `R_ag(t_i)` this reproduction
    /// adopts. Early fair history shields the score; an attack's damage
    /// peaks at the first checkpoint after it completes and dilutes as
    /// fair ratings keep arriving.
    #[default]
    Cumulative,
    /// The score at checkpoint `t_i` aggregates only the ratings of the
    /// 30-day period ending at `t_i` — a batch-mean variant, kept for
    /// comparison.
    PerPeriod,
}

/// Shared evaluation context for an aggregation-scheme run: the overall
/// time horizon, the scoring period length, and the scoring mode.
///
/// The paper computes aggregated scores at monthly checkpoints over the
/// duration of the challenge; `EvalContext` fixes that segmentation so
/// that the clean and attacked datasets are scored on identical
/// boundaries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalContext {
    horizon: TimeWindow,
    period: Days,
    scoring: ScoringMode,
}

impl EvalContext {
    /// Creates a context with an explicit horizon and period length,
    /// using cumulative scoring.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn new(horizon: TimeWindow, period: Days) -> Self {
        assert!(period.get() > 0.0, "period length must be positive");
        EvalContext {
            horizon,
            period,
            scoring: ScoringMode::Cumulative,
        }
    }

    /// Returns a copy using the given scoring mode.
    #[must_use]
    pub fn with_scoring(mut self, scoring: ScoringMode) -> Self {
        self.scoring = scoring;
        self
    }

    /// Returns the scoring mode.
    #[must_use]
    pub const fn scoring(&self) -> ScoringMode {
        self.scoring
    }

    /// Returns the window of ratings that contribute to the score at the
    /// checkpoint ending `period`: everything since the horizon start
    /// under [`ScoringMode::Cumulative`], just the period itself under
    /// [`ScoringMode::PerPeriod`].
    #[must_use]
    pub fn scoring_window(&self, period: TimeWindow) -> TimeWindow {
        match self.scoring {
            ScoringMode::Cumulative => TimeWindow::ordered(self.horizon.start(), period.end()),
            ScoringMode::PerPeriod => period,
        }
    }

    /// Derives a context from a dataset: the horizon starts at day 0 (or the
    /// earliest rating if it is negative) and ends just past the last
    /// rating, rounded up to a whole period.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Empty`] if the dataset holds no ratings.
    pub fn from_dataset(dataset: &RatingDataset, period: Days) -> Result<Self, CoreError> {
        let (lo, hi) = dataset.time_span()?;
        let start = Timestamp::new(lo.as_days().min(0.0))?;
        let span = hi.as_days() - start.as_days();
        let n_periods = (span / period.get()).floor() as usize + 1;
        let end = Timestamp::new(start.as_days() + n_periods as f64 * period.get())?;
        Ok(EvalContext {
            horizon: TimeWindow::new(start, end)?,
            period,
            scoring: ScoringMode::default(),
        })
    }

    /// Returns the overall horizon.
    #[must_use]
    pub const fn horizon(&self) -> TimeWindow {
        self.horizon
    }

    /// Returns the scoring period length.
    #[must_use]
    pub const fn period(&self) -> Days {
        self.period
    }

    /// Returns the consecutive scoring periods covering the horizon.
    #[must_use]
    pub fn periods(&self) -> Vec<TimeWindow> {
        self.horizon.periods(self.period)
    }
}

/// The result of running an aggregation scheme over a dataset.
///
/// Contains per-product aggregated scores for every scoring period
/// (`None` when the product received no usable ratings in a period), the
/// set of ratings the scheme marked suspicious, and the final trust values
/// of raters for schemes that maintain trust.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchemeOutcome {
    scores: BTreeMap<ProductId, Vec<Option<f64>>>,
    suspicious: BTreeSet<RatingId>,
    trust: BTreeMap<RaterId, f64>,
}

impl SchemeOutcome {
    /// Creates an empty outcome.
    #[must_use]
    pub fn new() -> Self {
        SchemeOutcome::default()
    }

    /// Records the per-period scores for a product.
    pub fn insert_scores(&mut self, product: ProductId, scores: Vec<Option<f64>>) {
        self.scores.insert(product, scores);
    }

    /// Returns the per-period scores for a product.
    #[must_use]
    pub fn scores(&self, product: ProductId) -> Option<&[Option<f64>]> {
        self.scores.get(&product).map(Vec::as_slice)
    }

    /// Iterates over `(product, scores)` pairs in product order.
    pub fn iter_scores(&self) -> impl Iterator<Item = (ProductId, &[Option<f64>])> {
        self.scores.iter().map(|(p, s)| (*p, s.as_slice()))
    }

    /// Marks a rating as suspicious.
    pub fn mark_suspicious(&mut self, id: RatingId) {
        self.suspicious.insert(id);
    }

    /// Marks many ratings as suspicious.
    pub fn mark_suspicious_all<I: IntoIterator<Item = RatingId>>(&mut self, ids: I) {
        self.suspicious.extend(ids);
    }

    /// Returns the ratings marked suspicious by the scheme.
    #[must_use]
    pub const fn suspicious(&self) -> &BTreeSet<RatingId> {
        &self.suspicious
    }

    /// Records a rater's final trust value.
    pub fn set_trust(&mut self, rater: RaterId, trust: f64) {
        self.trust.insert(rater, trust);
    }

    /// Returns the final trust value of a rater, if tracked.
    #[must_use]
    pub fn trust(&self, rater: RaterId) -> Option<f64> {
        self.trust.get(&rater).copied()
    }

    /// Returns all tracked trust values.
    #[must_use]
    pub const fn trust_map(&self) -> &BTreeMap<RaterId, f64> {
        &self.trust
    }
}

/// A rating-aggregation defense scheme.
///
/// Implementors take a full rating dataset and produce per-product,
/// per-period aggregated scores along with any suspicion / trust
/// diagnostics. The three schemes of the paper — the signal-based
/// P-scheme, plain averaging (SA), and beta-function filtering (BF) — all
/// implement this trait in the `rrs-aggregation` crate.
///
/// The trait is object-safe: the MP metric and the challenge harness accept
/// `&dyn AggregationScheme`.
///
/// `Send + Sync` are supertraits so scheme references can cross the
/// worker threads of [`crate::par::par_map`]; every scheme is plain
/// configuration data evaluated through `&self`, so this costs nothing.
pub trait AggregationScheme: Send + Sync {
    /// A short human-readable name, e.g. `"P-scheme"`.
    fn name(&self) -> &str;

    /// Runs the scheme over `dataset` using the periods defined by `ctx`.
    fn evaluate(&self, dataset: &RatingDataset, ctx: &EvalContext) -> SchemeOutcome;
}

impl<T: AggregationScheme + ?Sized> AggregationScheme for &T {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn evaluate(&self, dataset: &RatingDataset, ctx: &EvalContext) -> SchemeOutcome {
        (**self).evaluate(dataset, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rating, RatingSource, RatingValue};

    fn rating(day: f64) -> Rating {
        Rating::new(
            RaterId::new(1),
            ProductId::new(0),
            Timestamp::new(day).unwrap(),
            RatingValue::new(4.0).unwrap(),
        )
    }

    #[test]
    fn context_from_dataset_rounds_up_to_whole_periods() {
        let mut d = RatingDataset::new();
        d.insert(rating(0.0), RatingSource::Fair);
        d.insert(rating(65.0), RatingSource::Fair);
        let ctx = EvalContext::from_dataset(&d, Days::new(30.0).unwrap()).unwrap();
        assert_eq!(ctx.periods().len(), 3);
        assert_eq!(ctx.horizon().end().as_days(), 90.0);
    }

    #[test]
    fn context_from_empty_dataset_errors() {
        let d = RatingDataset::new();
        assert!(EvalContext::from_dataset(&d, Days::new(30.0).unwrap()).is_err());
    }

    #[test]
    fn context_horizon_contains_all_ratings() {
        let mut d = RatingDataset::new();
        d.insert(rating(12.0), RatingSource::Fair);
        d.insert(rating(29.999), RatingSource::Fair);
        let ctx = EvalContext::from_dataset(&d, Days::new(30.0).unwrap()).unwrap();
        assert!(ctx.horizon().contains(Timestamp::new(29.999).unwrap()));
    }

    #[test]
    fn scoring_window_modes() {
        let horizon =
            TimeWindow::new(Timestamp::new(0.0).unwrap(), Timestamp::new(90.0).unwrap()).unwrap();
        let ctx = EvalContext::new(horizon, Days::new(30.0).unwrap());
        assert_eq!(ctx.scoring(), ScoringMode::Cumulative);
        let period = ctx.periods()[1];
        // Cumulative: window reaches back to the horizon start.
        let w = ctx.scoring_window(period);
        assert_eq!(w.start(), horizon.start());
        assert_eq!(w.end(), period.end());
        // Per-period: the window is the period itself.
        let ctx = ctx.with_scoring(ScoringMode::PerPeriod);
        assert_eq!(ctx.scoring_window(period), period);
    }

    #[test]
    fn outcome_roundtrip() {
        let mut o = SchemeOutcome::new();
        o.insert_scores(ProductId::new(0), vec![Some(4.0), None]);
        o.set_trust(RaterId::new(3), 0.8);
        assert_eq!(o.scores(ProductId::new(0)).unwrap()[0], Some(4.0));
        assert_eq!(o.trust(RaterId::new(3)), Some(0.8));
        assert_eq!(o.trust(RaterId::new(4)), None);
        assert!(o.suspicious().is_empty());
    }

    #[test]
    fn trait_is_object_safe() {
        struct Dummy;
        impl AggregationScheme for Dummy {
            fn name(&self) -> &str {
                "dummy"
            }
            fn evaluate(&self, _: &RatingDataset, _: &EvalContext) -> SchemeOutcome {
                SchemeOutcome::new()
            }
        }
        let d: &dyn AggregationScheme = &Dummy;
        assert_eq!(d.name(), "dummy");
        // Blanket impl for references also works.
        assert_eq!(AggregationScheme::name(&d), "dummy");
    }
}
