use crate::CoreError;
use std::fmt;
use std::ops::{Add, Sub};

/// A point in simulated time, measured in fractional days since the start of
/// the rating history.
///
/// The paper's detectors mix two clocks: rating-index time (the *n*-th
/// rating) and wall-clock time in days (arrival rates, 30-day MP periods).
/// `Timestamp` is the wall clock; rating-index positions are plain `usize`.
///
/// The inner value is guaranteed finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Timestamp(f64);

impl Timestamp {
    /// The origin of simulated time.
    pub const ZERO: Timestamp = Timestamp(0.0);

    /// Creates a timestamp at `days` fractional days.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidTime`] if `days` is not finite.
    pub fn new(days: f64) -> Result<Self, CoreError> {
        if days.is_finite() {
            Ok(Timestamp(days))
        } else {
            Err(CoreError::InvalidTime { value: days })
        }
    }

    /// Creates a timestamp, clamping non-finite inputs instead of
    /// erroring: `NaN` maps to the origin, infinities to the nearest
    /// finite value.
    ///
    /// This is the constructor for call sites whose input is already
    /// validated (loop counters scaled by finite constants, sums of
    /// finite timestamps): it keeps the type's finiteness invariant
    /// without an `.expect()` chain on an unreachable branch.
    #[must_use]
    pub fn saturating(days: f64) -> Self {
        if days.is_finite() {
            Timestamp(days)
        } else if days == f64::INFINITY {
            Timestamp(f64::MAX)
        } else if days == f64::NEG_INFINITY {
            Timestamp(f64::MIN)
        } else {
            Timestamp(0.0)
        }
    }

    /// Returns the timestamp as fractional days.
    #[must_use]
    pub const fn as_days(self) -> f64 {
        self.0
    }

    /// Returns the whole-day index this timestamp falls in (floor).
    ///
    /// Timestamps before the origin all map to day 0.
    #[must_use]
    pub fn day_index(self) -> usize {
        if self.0 <= 0.0 {
            0
        } else {
            self.0.floor() as usize
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {:.2}", self.0)
    }
}

impl Eq for Timestamp {}

impl Ord for Timestamp {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Timestamp {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<Days> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Days) -> Timestamp {
        Timestamp(self.0 + rhs.get())
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Days;

    fn sub(self, rhs: Timestamp) -> Days {
        Days::new_saturating(self.0 - rhs.0)
    }
}

/// A non-negative duration in fractional days.
///
/// ```
/// use rrs_core::Days;
/// # fn main() -> Result<(), rrs_core::CoreError> {
/// let month = Days::new(30.0)?;
/// assert_eq!(month.get(), 30.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Days(f64);

impl Days {
    /// The zero-length duration.
    pub const ZERO: Days = Days(0.0);

    /// Creates a duration of `days` fractional days.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidDuration`] if `days` is negative or not
    /// finite.
    pub fn new(days: f64) -> Result<Self, CoreError> {
        if days.is_finite() && days >= 0.0 {
            Ok(Days(days))
        } else {
            Err(CoreError::InvalidDuration { days })
        }
    }

    /// Creates a duration, clamping negative or non-finite inputs to zero.
    #[must_use]
    pub fn new_saturating(days: f64) -> Self {
        if days.is_finite() && days > 0.0 {
            Days(days)
        } else {
            Days(0.0)
        }
    }

    /// Returns the duration in fractional days.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Days {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} days", self.0)
    }
}

impl Eq for Days {}

impl Ord for Days {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for Days {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A half-open time interval `[start, end)`.
///
/// Used for detector windows, MP scoring periods, and the overall challenge
/// horizon.
///
/// ```
/// use rrs_core::{Days, TimeWindow, Timestamp};
/// # fn main() -> Result<(), rrs_core::CoreError> {
/// let w = TimeWindow::new(Timestamp::new(0.0)?, Timestamp::new(30.0)?)?;
/// assert!(w.contains(Timestamp::new(29.99)?));
/// assert!(!w.contains(Timestamp::new(30.0)?));
/// assert_eq!(w.length(), Days::new(30.0)?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TimeWindow {
    start: Timestamp,
    end: Timestamp,
}

impl TimeWindow {
    /// Creates the window `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidWindow`] if `end < start`.
    pub fn new(start: Timestamp, end: Timestamp) -> Result<Self, CoreError> {
        if end < start {
            Err(CoreError::InvalidWindow {
                start: start.as_days(),
                end: end.as_days(),
            })
        } else {
            Ok(TimeWindow { start, end })
        }
    }

    /// Creates the window `[start, start + length)`.
    ///
    /// # Errors
    ///
    /// Propagates timestamp validation errors for a non-finite endpoint.
    pub fn with_length(start: Timestamp, length: Days) -> Result<Self, CoreError> {
        let end = Timestamp::new(start.as_days() + length.get())?;
        TimeWindow::new(start, end)
    }

    /// Creates the window spanning `a` and `b` in either order.
    ///
    /// Both orderings produce the same `[min, max)` window, so this
    /// constructor cannot fail — it replaces
    /// `TimeWindow::new(..).expect("ordered endpoints")` at call sites
    /// whose endpoints are ordered by construction.
    #[must_use]
    pub fn ordered(a: Timestamp, b: Timestamp) -> Self {
        if b < a {
            TimeWindow { start: b, end: a }
        } else {
            TimeWindow { start: a, end: b }
        }
    }

    /// Returns the inclusive start of the window.
    #[must_use]
    pub const fn start(self) -> Timestamp {
        self.start
    }

    /// Returns the exclusive end of the window.
    #[must_use]
    pub const fn end(self) -> Timestamp {
        self.end
    }

    /// Returns the window length.
    #[must_use]
    pub fn length(self) -> Days {
        self.end - self.start
    }

    /// Returns `true` if `t` lies inside `[start, end)`.
    #[must_use]
    pub fn contains(self, t: Timestamp) -> bool {
        self.start <= t && t < self.end
    }

    /// Returns the midpoint of the window.
    #[must_use]
    pub fn center(self) -> Timestamp {
        Timestamp((self.start.as_days() + self.end.as_days()) / 2.0)
    }

    /// Splits the window into consecutive periods of `period` days.
    ///
    /// The final period is truncated at the window end; a zero-length tail
    /// is not emitted. This is how the MP metric derives its 30-day scoring
    /// periods from the challenge horizon.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    #[must_use]
    pub fn periods(self, period: Days) -> Vec<TimeWindow> {
        assert!(period.get() > 0.0, "period length must be positive");
        let mut out = Vec::new();
        let mut start = self.start;
        while start < self.end {
            let raw_end = start.as_days() + period.get();
            let end = if raw_end > self.end.as_days() {
                self.end
            } else {
                Timestamp(raw_end)
            };
            out.push(TimeWindow { start, end });
            start = end;
        }
        out
    }

    /// Returns the intersection of two windows, or `None` if disjoint.
    #[must_use]
    pub fn intersect(self, other: TimeWindow) -> Option<TimeWindow> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeWindow { start, end })
        } else {
            None
        }
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.2}, {:.2}) days",
            self.start.as_days(),
            self.end.as_days()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{prop_assert, prop_assert_eq, props};

    fn ts(d: f64) -> Timestamp {
        Timestamp::new(d).unwrap()
    }

    #[test]
    fn timestamp_rejects_non_finite() {
        assert!(Timestamp::new(f64::NAN).is_err());
        assert!(Timestamp::new(f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn day_index_floors() {
        assert_eq!(ts(0.0).day_index(), 0);
        assert_eq!(ts(0.99).day_index(), 0);
        assert_eq!(ts(1.0).day_index(), 1);
        assert_eq!(ts(-3.0).day_index(), 0);
    }

    #[test]
    fn arithmetic() {
        let t = ts(10.0) + Days::new(2.5).unwrap();
        assert_eq!(t.as_days(), 12.5);
        assert_eq!((ts(12.5) - ts(10.0)).get(), 2.5);
        // Subtraction saturates at zero rather than producing a negative duration.
        assert_eq!((ts(1.0) - ts(5.0)).get(), 0.0);
    }

    #[test]
    fn window_rejects_reversed() {
        assert!(TimeWindow::new(ts(2.0), ts(1.0)).is_err());
    }

    #[test]
    fn saturating_timestamp_clamps() {
        assert_eq!(Timestamp::saturating(1.5).as_days(), 1.5);
        assert_eq!(Timestamp::saturating(f64::NAN).as_days(), 0.0);
        assert_eq!(Timestamp::saturating(f64::INFINITY).as_days(), f64::MAX);
        assert_eq!(Timestamp::saturating(f64::NEG_INFINITY).as_days(), f64::MIN);
    }

    #[test]
    fn ordered_window_accepts_either_order() {
        let w = TimeWindow::ordered(ts(5.0), ts(2.0));
        assert_eq!(w.start(), ts(2.0));
        assert_eq!(w.end(), ts(5.0));
        assert_eq!(TimeWindow::ordered(ts(2.0), ts(5.0)), w);
        let degenerate = TimeWindow::ordered(ts(3.0), ts(3.0));
        assert_eq!(degenerate.length(), Days::ZERO);
    }

    #[test]
    fn window_contains_is_half_open() {
        let w = TimeWindow::new(ts(1.0), ts(2.0)).unwrap();
        assert!(w.contains(ts(1.0)));
        assert!(!w.contains(ts(2.0)));
    }

    #[test]
    fn periods_cover_window_exactly() {
        let w = TimeWindow::new(ts(0.0), ts(95.0)).unwrap();
        let ps = w.periods(Days::new(30.0).unwrap());
        assert_eq!(ps.len(), 4);
        assert_eq!(ps[0].start(), ts(0.0));
        assert_eq!(ps[3].end(), ts(95.0));
        assert_eq!(ps[3].length().get(), 5.0);
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = TimeWindow::new(ts(0.0), ts(1.0)).unwrap();
        let b = TimeWindow::new(ts(1.0), ts(2.0)).unwrap();
        assert!(a.intersect(b).is_none());
    }

    #[test]
    fn intersect_overlapping() {
        let a = TimeWindow::new(ts(0.0), ts(5.0)).unwrap();
        let b = TimeWindow::new(ts(3.0), ts(8.0)).unwrap();
        let i = a.intersect(b).unwrap();
        assert_eq!(i.start(), ts(3.0));
        assert_eq!(i.end(), ts(5.0));
    }

    props! {
        #[test]
        fn periods_partition(start in -100.0f64..100.0, len in 0.1f64..400.0, period in 0.5f64..60.0) {
            let w = TimeWindow::with_length(ts(start), Days::new(len).unwrap()).unwrap();
            let ps = w.periods(Days::new(period).unwrap());
            prop_assert!(!ps.is_empty());
            prop_assert_eq!(ps[0].start(), w.start());
            prop_assert_eq!(ps[ps.len() - 1].end(), w.end());
            for pair in ps.windows(2) {
                prop_assert_eq!(pair[0].end(), pair[1].start());
            }
        }

        #[test]
        fn window_center_is_inside(start in -50.0f64..50.0, len in 0.1f64..100.0) {
            let w = TimeWindow::with_length(ts(start), Days::new(len).unwrap()).unwrap();
            prop_assert!(w.contains(w.center()));
        }
    }
}
