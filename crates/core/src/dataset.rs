use crate::{CoreError, ProductId, RaterId, Rating, RatingSource, TimeWindow, Timestamp};
use std::collections::BTreeMap;
use std::fmt;

/// A dataset-unique identifier for an inserted rating.
///
/// Detectors refer to individual ratings (for example to mark them
/// suspicious) by `RatingId`. Identifiers are assigned in insertion order
/// and are stable under [`RatingDataset::clone`], so a cloned dataset that
/// receives extra unfair ratings keeps the fair ratings' identifiers —
/// which is what lets the challenge harness compare suspicion marks against
/// ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RatingId(u64);

impl RatingId {
    /// Returns the raw identifier value.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RatingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rating#{}", self.0)
    }
}

/// A rating stored in a dataset, together with its identifier and
/// ground-truth provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingEntry {
    id: RatingId,
    rating: Rating,
    source: RatingSource,
}

impl RatingEntry {
    /// Returns the dataset-unique identifier.
    #[must_use]
    pub const fn id(&self) -> RatingId {
        self.id
    }

    /// Returns the rating event.
    #[must_use]
    pub const fn rating(&self) -> &Rating {
        &self.rating
    }

    /// Returns the ground-truth provenance.
    #[must_use]
    pub const fn source(&self) -> RatingSource {
        self.source
    }

    /// Shorthand for the rating time.
    #[must_use]
    pub const fn time(&self) -> Timestamp {
        self.rating.time()
    }

    /// Shorthand for the rating value as `f64`.
    #[must_use]
    pub const fn value(&self) -> f64 {
        self.rating.value().get()
    }

    /// Shorthand for the rater.
    #[must_use]
    pub const fn rater(&self) -> RaterId {
        self.rating.rater()
    }
}

/// The time-ordered rating history of a single product.
///
/// Entries are kept sorted by `(time, id)`; ties in time preserve insertion
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProductTimeline {
    entries: Vec<RatingEntry>,
}

impl ProductTimeline {
    /// Returns a borrowed read view of this timeline.
    #[must_use]
    pub fn view(&self) -> TimelineView<'_> {
        TimelineView {
            entries: &self.entries,
        }
    }

    /// Returns the entries in time order.
    #[must_use]
    pub fn entries(&self) -> &[RatingEntry] {
        &self.entries
    }

    /// Returns the number of ratings for this product.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the product has no ratings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the contiguous slice of entries whose times fall in `window`.
    #[must_use]
    pub fn in_window(&self, window: TimeWindow) -> &[RatingEntry] {
        self.view().in_window(window)
    }

    /// Returns all rating values in time order.
    #[must_use]
    pub fn values(&self) -> Vec<f64> {
        self.view().values()
    }

    /// Returns all rating times in time order.
    #[must_use]
    pub fn times(&self) -> Vec<Timestamp> {
        self.view().times()
    }

    /// Returns the mean rating value, or `None` if the timeline is empty.
    #[must_use]
    pub fn mean_value(&self) -> Option<f64> {
        self.view().mean_value()
    }

    /// Counts ratings per whole day over `window`.
    ///
    /// Element `i` of the result is the number of ratings in
    /// `[start + i, start + i + 1)` days; the last bucket is truncated at the
    /// window end. This is the `y(n)` series of the paper's arrival-rate
    /// change detector.
    #[must_use]
    pub fn daily_counts(&self, window: TimeWindow) -> Vec<u32> {
        self.view().daily_counts(window)
    }

    /// Counts ratings per whole day, restricted to values accepted by
    /// `keep`.
    ///
    /// The H-ARC and L-ARC detectors use this with "value above
    /// `threshold_a`" and "value below `threshold_b`" predicates.
    #[must_use]
    pub fn daily_counts_filtered<F>(&self, window: TimeWindow, keep: F) -> Vec<u32>
    where
        F: FnMut(f64) -> bool,
    {
        self.view().daily_counts_filtered(window, keep)
    }

    fn insert(&mut self, entry: RatingEntry) {
        // Insertion keeps (time, id) order; typical insertions are appends
        // because generators emit ratings in time order.
        let pos = self
            .entries
            .partition_point(|e| (e.time(), e.id()) <= (entry.time(), entry.id()));
        self.entries.insert(pos, entry);
    }
}

/// A borrowed, copyable read view of one product's rating history.
///
/// Carries the full read API of [`ProductTimeline`] over a borrowed entry
/// slice, so prefix windows of a dataset can be examined without copying
/// any rating (see [`RatingDataset::prefix_view`]). Detector entry points
/// accept `impl Into<TimelineView>` and therefore work identically on
/// `&ProductTimeline` and on views.
///
/// The type is `Copy`; methods take `self` and borrowed return values
/// keep the lifetime of the underlying data, not of the view.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineView<'a> {
    entries: &'a [RatingEntry],
}

impl<'a> TimelineView<'a> {
    /// Returns the entries in time order.
    #[must_use]
    pub fn entries(self) -> &'a [RatingEntry] {
        self.entries
    }

    /// Returns the number of ratings in the view.
    #[must_use]
    pub fn len(self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the view holds no ratings.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the contiguous slice of entries whose times fall in `window`.
    #[must_use]
    pub fn in_window(self, window: TimeWindow) -> &'a [RatingEntry] {
        let lo = self.entries.partition_point(|e| e.time() < window.start());
        let hi = self.entries.partition_point(|e| e.time() < window.end());
        &self.entries[lo..hi]
    }

    /// Returns all rating values in time order.
    #[must_use]
    pub fn values(self) -> Vec<f64> {
        self.entries.iter().map(RatingEntry::value).collect()
    }

    /// Returns all rating times in time order.
    #[must_use]
    pub fn times(self) -> Vec<Timestamp> {
        self.entries.iter().map(RatingEntry::time).collect()
    }

    /// Returns the mean rating value, or `None` if the view is empty.
    #[must_use]
    pub fn mean_value(self) -> Option<f64> {
        if self.entries.is_empty() {
            None
        } else {
            let sum: f64 = self.entries.iter().map(RatingEntry::value).sum();
            Some(sum / self.entries.len() as f64)
        }
    }

    /// Counts ratings per whole day over `window`; see
    /// [`ProductTimeline::daily_counts`].
    #[must_use]
    pub fn daily_counts(self, window: TimeWindow) -> Vec<u32> {
        let days = window.length().get().ceil() as usize;
        let mut counts = vec![0u32; days];
        for e in self.in_window(window) {
            let offset = e.time().as_days() - window.start().as_days();
            let idx = (offset.floor() as usize).min(days.saturating_sub(1));
            counts[idx] += 1;
        }
        counts
    }

    /// Counts ratings per whole day, restricted to values accepted by
    /// `keep`; see [`ProductTimeline::daily_counts_filtered`].
    #[must_use]
    pub fn daily_counts_filtered<F>(self, window: TimeWindow, mut keep: F) -> Vec<u32>
    where
        F: FnMut(f64) -> bool,
    {
        let days = window.length().get().ceil() as usize;
        let mut counts = vec![0u32; days];
        for e in self.in_window(window) {
            if keep(e.value()) {
                let offset = e.time().as_days() - window.start().as_days();
                let idx = (offset.floor() as usize).min(days.saturating_sub(1));
                counts[idx] += 1;
            }
        }
        counts
    }
}

impl<'a> From<&'a ProductTimeline> for TimelineView<'a> {
    fn from(timeline: &'a ProductTimeline) -> Self {
        timeline.view()
    }
}

/// A collection of rating histories for a set of products.
///
/// This is the unit the aggregation schemes and the Rating Challenge operate
/// on: the challenge distributes one fair dataset, attackers produce a
/// modified copy with unfair ratings inserted, and the MP metric compares
/// aggregation results on the two.
///
/// # Example
///
/// ```
/// use rrs_core::{ProductId, RaterId, Rating, RatingDataset, RatingSource, RatingValue, Timestamp};
/// # fn main() -> Result<(), rrs_core::CoreError> {
/// let mut clean = RatingDataset::new();
/// for day in 0..10 {
///     clean.insert(
///         Rating::new(
///             RaterId::new(day),
///             ProductId::new(0),
///             Timestamp::new(f64::from(day))?,
///             RatingValue::new(4.0)?,
///         ),
///         RatingSource::Fair,
///     );
/// }
/// let mut attacked = clean.clone();
/// attacked.insert(
///     Rating::new(RaterId::new(100), ProductId::new(0), Timestamp::new(5.0)?, RatingValue::new(0.0)?),
///     RatingSource::Unfair,
/// );
/// assert_eq!(clean.len(), 10);
/// assert_eq!(attacked.unfair_ids().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RatingDataset {
    products: BTreeMap<ProductId, ProductTimeline>,
    next_id: u64,
}

impl RatingDataset {
    /// Creates an empty dataset.
    #[must_use]
    pub fn new() -> Self {
        RatingDataset::default()
    }

    /// Inserts a rating with the given provenance and returns its
    /// identifier.
    pub fn insert(&mut self, rating: Rating, source: RatingSource) -> RatingId {
        let id = RatingId(self.next_id);
        self.next_id += 1;
        self.products
            .entry(rating.product())
            .or_default()
            .insert(RatingEntry { id, rating, source });
        id
    }

    /// Inserts every rating from an iterator, all with the same provenance.
    pub fn extend_from<I>(&mut self, ratings: I, source: RatingSource)
    where
        I: IntoIterator<Item = Rating>,
    {
        for r in ratings {
            self.insert(r, source);
        }
    }

    /// Returns the timeline for `product`, if any rating exists for it.
    #[must_use]
    pub fn product(&self, product: ProductId) -> Option<&ProductTimeline> {
        self.products.get(&product)
    }

    /// Iterates over `(product, timeline)` pairs in product order.
    pub fn products(&self) -> impl Iterator<Item = (ProductId, &ProductTimeline)> {
        self.products.iter().map(|(id, tl)| (*id, tl))
    }

    /// Returns the product identifiers present in the dataset.
    #[must_use]
    pub fn product_ids(&self) -> Vec<ProductId> {
        self.products.keys().copied().collect()
    }

    /// Returns the total number of ratings across all products.
    #[must_use]
    pub fn len(&self) -> usize {
        self.products.values().map(ProductTimeline::len).sum()
    }

    /// Returns `true` if the dataset holds no ratings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.products.values().all(ProductTimeline::is_empty)
    }

    /// Returns the earliest and latest rating time across all products.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Empty`] if the dataset holds no ratings.
    pub fn time_span(&self) -> Result<(Timestamp, Timestamp), CoreError> {
        let mut span: Option<(Timestamp, Timestamp)> = None;
        for tl in self.products.values() {
            if let (Some(first), Some(last)) = (tl.entries.first(), tl.entries.last()) {
                span = Some(match span {
                    None => (first.time(), last.time()),
                    Some((lo, hi)) => (lo.min(first.time()), hi.max(last.time())),
                });
            }
        }
        span.ok_or(CoreError::Empty { what: "dataset" })
    }

    /// Returns the identifiers of all ratings with
    /// [`RatingSource::Unfair`] provenance.
    #[must_use]
    pub fn unfair_ids(&self) -> Vec<RatingId> {
        let mut out = Vec::new();
        for tl in self.products.values() {
            out.extend(
                tl.entries
                    .iter()
                    .filter(|e| e.source().is_unfair())
                    .map(RatingEntry::id),
            );
        }
        out
    }

    /// Returns the distinct raters appearing in the dataset.
    #[must_use]
    pub fn raters(&self) -> Vec<RaterId> {
        let mut set = std::collections::BTreeSet::new();
        for tl in self.products.values() {
            for e in &tl.entries {
                set.insert(e.rater());
            }
        }
        set.into_iter().collect()
    }

    /// Returns a copy of this dataset containing only fair ratings.
    ///
    /// Identifiers of the retained ratings are preserved.
    #[must_use]
    pub fn fair_only(&self) -> RatingDataset {
        let mut out = RatingDataset {
            products: BTreeMap::new(),
            next_id: self.next_id,
        };
        for (pid, tl) in &self.products {
            let kept: Vec<RatingEntry> = tl
                .entries
                .iter()
                .filter(|e| !e.source().is_unfair())
                .copied()
                .collect();
            if !kept.is_empty() {
                out.products.insert(*pid, ProductTimeline { entries: kept });
            }
        }
        out
    }

    /// Iterates over every entry in the dataset, grouped by product and in
    /// time order within each product.
    pub fn iter(&self) -> impl Iterator<Item = &RatingEntry> {
        self.products.values().flat_map(|tl| tl.entries.iter())
    }

    /// Returns a copy containing only the ratings whose times fall in
    /// `window`, with identifiers preserved.
    ///
    /// Prefer [`prefix_view`](Self::prefix_view) on hot paths: it exposes
    /// the same product set without copying a single rating. `restricted`
    /// remains for callers that need an owned, independently mutable
    /// dataset.
    #[must_use]
    pub fn restricted(&self, window: TimeWindow) -> RatingDataset {
        let mut out = RatingDataset {
            products: BTreeMap::new(),
            next_id: self.next_id,
        };
        for (pid, tl) in &self.products {
            let kept = tl.in_window(window).to_vec();
            if !kept.is_empty() {
                out.products.insert(*pid, ProductTimeline { entries: kept });
            }
        }
        out
    }

    /// Returns a borrowed view of the whole dataset.
    #[must_use]
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView {
            products: self
                .products
                .iter()
                .map(|(pid, tl)| (*pid, tl.view()))
                .collect(),
        }
    }

    /// Returns a borrowed view of the ratings whose times fall in
    /// `window` — the zero-copy equivalent of
    /// [`restricted`](Self::restricted), covering the same products (ones
    /// with no rating in the window are omitted).
    ///
    /// The P-scheme runs *online*: at each monthly trust-update epoch it
    /// re-detects over the data available so far. Materializing that
    /// prefix with `restricted` made epoch *e* re-clone epochs `0..e` —
    /// O(epochs × ratings) allocation over a run; this view borrows each
    /// product's in-window slice instead, so an epoch costs two binary
    /// searches per product.
    #[must_use]
    pub fn prefix_view(&self, window: TimeWindow) -> DatasetView<'_> {
        let mut products = Vec::new();
        for (pid, tl) in &self.products {
            let entries = tl.in_window(window);
            if !entries.is_empty() {
                products.push((*pid, TimelineView { entries }));
            }
        }
        DatasetView { products }
    }
}

/// A borrowed read view of a dataset: the product timelines visible to
/// one detection or trust-update pass.
///
/// Produced by [`RatingDataset::view`] (everything) and
/// [`RatingDataset::prefix_view`] (one time window, zero-copy). APIs that
/// only read ratings accept `impl Into<DatasetView>`, so `&RatingDataset`
/// and `&DatasetView` are interchangeable at call sites.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetView<'a> {
    products: Vec<(ProductId, TimelineView<'a>)>,
}

impl<'a> DatasetView<'a> {
    /// Returns the `(product, timeline)` pairs in ascending product
    /// order.
    #[must_use]
    pub fn products(&self) -> &[(ProductId, TimelineView<'a>)] {
        &self.products
    }

    /// Returns the view of `product`, if it has any rating here.
    #[must_use]
    pub fn product(&self, product: ProductId) -> Option<TimelineView<'a>> {
        self.products
            .binary_search_by_key(&product, |(pid, _)| *pid)
            .ok()
            .map(|i| self.products[i].1)
    }

    /// Returns the total number of ratings across all products.
    #[must_use]
    pub fn len(&self) -> usize {
        self.products.iter().map(|(_, tl)| tl.len()).sum()
    }

    /// Returns `true` if the view holds no ratings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.products.iter().all(|(_, tl)| tl.is_empty())
    }
}

impl<'a> From<&'a RatingDataset> for DatasetView<'a> {
    fn from(dataset: &'a RatingDataset) -> Self {
        dataset.view()
    }
}

impl<'a> From<&DatasetView<'a>> for DatasetView<'a> {
    fn from(view: &DatasetView<'a>) -> Self {
        view.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::vec_of;
    use crate::RatingValue;
    use crate::{prop_assert, prop_assert_eq, props};

    fn rating(rater: u32, product: u16, day: f64, value: f64) -> Rating {
        Rating::new(
            RaterId::new(rater),
            ProductId::new(product),
            Timestamp::new(day).unwrap(),
            RatingValue::new(value).unwrap(),
        )
    }

    fn window(a: f64, b: f64) -> TimeWindow {
        TimeWindow::new(Timestamp::new(a).unwrap(), Timestamp::new(b).unwrap()).unwrap()
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut d = RatingDataset::new();
        let a = d.insert(rating(1, 0, 0.0, 4.0), RatingSource::Fair);
        let b = d.insert(rating(2, 0, 1.0, 4.0), RatingSource::Fair);
        assert!(a < b);
        assert_eq!(a.value() + 1, b.value());
    }

    #[test]
    fn entries_sorted_by_time_regardless_of_insert_order() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 5.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 1.0, 3.0), RatingSource::Fair);
        d.insert(rating(3, 0, 3.0, 2.0), RatingSource::Fair);
        let times = d.product(ProductId::new(0)).unwrap().times();
        assert_eq!(
            times.iter().map(|t| t.as_days()).collect::<Vec<_>>(),
            vec![1.0, 3.0, 5.0]
        );
    }

    #[test]
    fn ties_in_time_preserve_insertion_order() {
        let mut d = RatingDataset::new();
        let a = d.insert(rating(1, 0, 2.0, 1.0), RatingSource::Fair);
        let b = d.insert(rating(2, 0, 2.0, 2.0), RatingSource::Fair);
        let entries = d.product(ProductId::new(0)).unwrap().entries().to_vec();
        assert_eq!(entries[0].id(), a);
        assert_eq!(entries[1].id(), b);
    }

    #[test]
    fn in_window_is_half_open() {
        let mut d = RatingDataset::new();
        for day in 0..10 {
            d.insert(rating(day, 0, f64::from(day), 4.0), RatingSource::Fair);
        }
        let tl = d.product(ProductId::new(0)).unwrap();
        let slice = tl.in_window(window(2.0, 5.0));
        assert_eq!(slice.len(), 3);
        assert_eq!(slice[0].time().as_days(), 2.0);
        assert_eq!(slice[2].time().as_days(), 4.0);
    }

    #[test]
    fn daily_counts_buckets_correctly() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 0.2, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 0.9, 4.0), RatingSource::Fair);
        d.insert(rating(3, 0, 1.5, 4.0), RatingSource::Fair);
        d.insert(rating(4, 0, 2.0, 4.0), RatingSource::Fair);
        let counts = d
            .product(ProductId::new(0))
            .unwrap()
            .daily_counts(window(0.0, 3.0));
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn daily_counts_filtered_splits_high_low() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 0.5, 5.0), RatingSource::Fair);
        d.insert(rating(2, 0, 0.6, 1.0), RatingSource::Fair);
        let tl = d.product(ProductId::new(0)).unwrap();
        let high = tl.daily_counts_filtered(window(0.0, 1.0), |v| v > 2.5);
        let low = tl.daily_counts_filtered(window(0.0, 1.0), |v| v < 2.5);
        assert_eq!(high, vec![1]);
        assert_eq!(low, vec![1]);
    }

    #[test]
    fn clone_preserves_ids_for_ground_truth() {
        let mut clean = RatingDataset::new();
        let fair_id = clean.insert(rating(1, 0, 0.0, 4.0), RatingSource::Fair);
        let mut attacked = clean.clone();
        let unfair_id = attacked.insert(rating(99, 0, 1.0, 0.0), RatingSource::Unfair);
        assert_ne!(fair_id, unfair_id);
        assert_eq!(attacked.unfair_ids(), vec![unfair_id]);
        assert!(clean.unfair_ids().is_empty());
    }

    #[test]
    fn fair_only_strips_unfair_and_keeps_ids() {
        let mut d = RatingDataset::new();
        let fair_id = d.insert(rating(1, 0, 0.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 1.0, 0.0), RatingSource::Unfair);
        let clean = d.fair_only();
        assert_eq!(clean.len(), 1);
        assert_eq!(clean.iter().next().unwrap().id(), fair_id);
    }

    #[test]
    fn restricted_keeps_ids_and_window_only() {
        let mut d = RatingDataset::new();
        let a = d.insert(rating(1, 0, 5.0, 4.0), RatingSource::Fair);
        let _b = d.insert(rating(2, 0, 50.0, 4.0), RatingSource::Fair);
        let r = d.restricted(window(0.0, 30.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().id(), a);
        // New insertions after restriction do not collide with old ids.
        let mut r2 = r.clone();
        let c = r2.insert(rating(3, 0, 10.0, 4.0), RatingSource::Unfair);
        assert!(c.value() >= 2);
    }

    #[test]
    fn time_span_on_empty_errors() {
        assert!(RatingDataset::new().time_span().is_err());
    }

    #[test]
    fn time_span_spans_products() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 5.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 1, 1.0, 4.0), RatingSource::Fair);
        d.insert(rating(3, 1, 9.0, 4.0), RatingSource::Fair);
        let (lo, hi) = d.time_span().unwrap();
        assert_eq!(lo.as_days(), 1.0);
        assert_eq!(hi.as_days(), 9.0);
    }

    #[test]
    fn raters_are_distinct_and_sorted() {
        let mut d = RatingDataset::new();
        d.insert(rating(5, 0, 0.0, 4.0), RatingSource::Fair);
        d.insert(rating(1, 1, 1.0, 4.0), RatingSource::Fair);
        d.insert(rating(5, 1, 2.0, 4.0), RatingSource::Fair);
        assert_eq!(d.raters(), vec![RaterId::new(1), RaterId::new(5)]);
    }

    #[test]
    fn mean_value() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 0.0, 2.0), RatingSource::Fair);
        d.insert(rating(2, 0, 1.0, 4.0), RatingSource::Fair);
        let tl = d.product(ProductId::new(0)).unwrap();
        assert_eq!(tl.mean_value(), Some(3.0));
        assert_eq!(ProductTimeline::default().mean_value(), None);
    }

    #[test]
    fn prefix_view_matches_restricted() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 5.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 50.0, 4.0), RatingSource::Fair);
        d.insert(rating(3, 1, 70.0, 2.0), RatingSource::Unfair);
        let w = window(0.0, 30.0);
        let view = d.prefix_view(w);
        let copy = d.restricted(w);
        // Same product set, same entries, same order — without copying.
        assert_eq!(view.products().len(), copy.products().count());
        for (pid, tl) in view.products() {
            assert_eq!(Some(tl.entries()), copy.product(*pid).map(|t| t.entries()));
        }
        assert_eq!(view.len(), copy.len());
        // Products with nothing in the window are omitted, as in
        // `restricted`.
        assert!(view.product(ProductId::new(1)).is_none());
    }

    #[test]
    fn dataset_view_product_lookup() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 3, 1.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 7, 2.0, 3.0), RatingSource::Fair);
        let view = d.view();
        assert_eq!(view.products().len(), 2);
        assert_eq!(
            view.product(ProductId::new(7)).map(TimelineView::len),
            Some(1)
        );
        assert!(view.product(ProductId::new(5)).is_none());
        assert!(!view.is_empty());
        assert_eq!(view.len(), 2);
    }

    #[test]
    fn timeline_view_mirrors_timeline() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 0.2, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 1.5, 2.0), RatingSource::Fair);
        let tl = d.product(ProductId::new(0)).unwrap();
        let view = tl.view();
        assert_eq!(view.values(), tl.values());
        assert_eq!(view.times(), tl.times());
        assert_eq!(view.mean_value(), tl.mean_value());
        let w = window(0.0, 3.0);
        assert_eq!(view.daily_counts(w), tl.daily_counts(w));
        assert_eq!(view.in_window(w), tl.in_window(w));
    }

    props! {
        #[test]
        fn prefix_view_equals_restricted_on_random_windows(
            days in vec_of(0.0f64..90.0, 0..60)
        ) {
            let mut d = RatingDataset::new();
            for (i, day) in days.iter().enumerate() {
                d.insert(rating(i as u32, (i % 3) as u16, *day, 3.0), RatingSource::Fair);
            }
            let w = window(20.0, 60.0);
            let view = d.prefix_view(w);
            let copy = d.restricted(w);
            prop_assert_eq!(view.len(), copy.len());
            for (pid, tl) in view.products() {
                let owned = copy.product(*pid).map(|t| t.entries().to_vec());
                prop_assert_eq!(Some(tl.entries().to_vec()), owned);
            }
        }

        #[test]
        fn timeline_always_sorted(days in vec_of(0.0f64..100.0, 1..50)) {
            let mut d = RatingDataset::new();
            for (i, day) in days.iter().enumerate() {
                d.insert(rating(i as u32, 0, *day, 3.0), RatingSource::Fair);
            }
            let times = d.product(ProductId::new(0)).unwrap().times();
            for pair in times.windows(2) {
                prop_assert!(pair[0] <= pair[1]);
            }
        }

        #[test]
        fn daily_counts_sum_to_window_population(days in vec_of(0.0f64..30.0, 0..80)) {
            let mut d = RatingDataset::new();
            for (i, day) in days.iter().enumerate() {
                d.insert(rating(i as u32, 0, *day, 3.0), RatingSource::Fair);
            }
            if let Some(tl) = d.product(ProductId::new(0)) {
                let w = window(0.0, 30.0);
                let counts = tl.daily_counts(w);
                let total: u32 = counts.iter().sum();
                prop_assert_eq!(total as usize, tl.in_window(w).len());
            }
        }
    }
}
