use crate::store::{ColumnarStore, RatingStore, RowStore};
use crate::{CoreError, ProductId, RaterId, Rating, RatingSource, TimeWindow, Timestamp};
use std::fmt;

/// A dataset-unique identifier for an inserted rating.
///
/// Detectors refer to individual ratings (for example to mark them
/// suspicious) by `RatingId`. Identifiers are assigned in insertion order
/// and are stable under [`RatingDataset::clone`], so a cloned dataset that
/// receives extra unfair ratings keeps the fair ratings' identifiers —
/// which is what lets the challenge harness compare suspicion marks against
/// ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RatingId(u64);

impl RatingId {
    /// Returns the raw identifier value.
    #[must_use]
    pub const fn value(self) -> u64 {
        self.0
    }
}

/// Builds a [`RatingId`] from its raw value (engine tests need to mint
/// ids without a dataset).
#[cfg(test)]
pub(crate) const fn raw_rating_id(value: u64) -> RatingId {
    RatingId(value)
}

impl fmt::Display for RatingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rating#{}", self.0)
    }
}

/// A rating stored in a dataset, together with its identifier and
/// ground-truth provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatingEntry {
    id: RatingId,
    rating: Rating,
    source: RatingSource,
}

impl RatingEntry {
    /// Assembles an entry from its parts (crate-internal: the columnar
    /// engine reconstitutes entries from its columns).
    pub(crate) const fn assemble(id: RatingId, rating: Rating, source: RatingSource) -> Self {
        RatingEntry { id, rating, source }
    }

    /// Returns the dataset-unique identifier.
    #[must_use]
    pub const fn id(&self) -> RatingId {
        self.id
    }

    /// Returns the rating event.
    #[must_use]
    pub const fn rating(&self) -> &Rating {
        &self.rating
    }

    /// Returns the ground-truth provenance.
    #[must_use]
    pub const fn source(&self) -> RatingSource {
        self.source
    }

    /// Shorthand for the rating time.
    #[must_use]
    pub const fn time(&self) -> Timestamp {
        self.rating.time()
    }

    /// Shorthand for the rating value as `f64`.
    #[must_use]
    pub const fn value(&self) -> f64 {
        self.rating.value().get()
    }

    /// Shorthand for the rater.
    #[must_use]
    pub const fn rater(&self) -> RaterId {
        self.rating.rater()
    }
}

/// The time-ordered rating history of a single product, stored as rows.
///
/// This is the [`RowStore`] engine's per-product representation (and the
/// unit its oracle tests build directly). Entries are kept sorted by
/// `(time, id)`; ties in time preserve insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProductTimeline {
    entries: Vec<RatingEntry>,
}

impl ProductTimeline {
    /// Returns a borrowed read view of this timeline.
    #[must_use]
    pub fn view(&self) -> TimelineView<'_> {
        TimelineView::from_rows(&self.entries)
    }

    /// Returns the entries in time order.
    #[must_use]
    pub fn entries(&self) -> &[RatingEntry] {
        &self.entries
    }

    /// Returns the number of ratings for this product.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the product has no ratings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the sub-view of entries whose times fall in `window`.
    #[must_use]
    pub fn in_window(&self, window: TimeWindow) -> TimelineView<'_> {
        self.view().in_window(window)
    }

    /// Returns all rating values in time order.
    #[must_use]
    pub fn values(&self) -> Vec<f64> {
        self.view().values()
    }

    /// Returns all rating times in time order.
    #[must_use]
    pub fn times(&self) -> Vec<Timestamp> {
        self.view().times()
    }

    /// Returns the mean rating value, or `None` if the timeline is empty.
    #[must_use]
    pub fn mean_value(&self) -> Option<f64> {
        self.view().mean_value()
    }

    /// Counts ratings per whole day over `window`.
    ///
    /// Element `i` of the result is the number of ratings in
    /// `[start + i, start + i + 1)` days; the last bucket is truncated at the
    /// window end. This is the `y(n)` series of the paper's arrival-rate
    /// change detector.
    #[must_use]
    pub fn daily_counts(&self, window: TimeWindow) -> Vec<u32> {
        self.view().daily_counts(window)
    }

    /// Counts ratings per whole day, restricted to values accepted by
    /// `keep`.
    ///
    /// The H-ARC and L-ARC detectors use this with "value above
    /// `threshold_a`" and "value below `threshold_b`" predicates.
    #[must_use]
    pub fn daily_counts_filtered<F>(&self, window: TimeWindow, keep: F) -> Vec<u32>
    where
        F: FnMut(f64) -> bool,
    {
        self.view().daily_counts_filtered(window, keep)
    }

    pub(crate) fn insert(&mut self, entry: RatingEntry) {
        // Insertion keeps (time, id) order; typical insertions are appends
        // because generators emit ratings in time order.
        let pos = self
            .entries
            .partition_point(|e| (e.time(), e.id()) <= (entry.time(), entry.id()));
        self.entries.insert(pos, entry);
    }
}

/// Borrowed column slices of one product: the columnar half of a
/// [`TimelineView`]. Index `i` across the five slices reassembles the
/// `i`-th entry; the product id rides along because columns don't store
/// it per row.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ColumnsRef<'a> {
    pub(crate) product: ProductId,
    pub(crate) ids: &'a [RatingId],
    pub(crate) times: &'a [Timestamp],
    pub(crate) values: &'a [f64],
    pub(crate) raters: &'a [RaterId],
    pub(crate) sources: &'a [RatingSource],
}

/// The two borrowed representations a view can walk.
#[derive(Debug, Clone, Copy)]
enum TlRepr<'a> {
    Rows(&'a [RatingEntry]),
    Cols(ColumnsRef<'a>),
}

/// A borrowed, copyable read view of one product's rating history.
///
/// The view is representation-agnostic: it walks either a row slice
/// (`&[RatingEntry]`, from [`RowStore`] / [`ProductTimeline`]) or the
/// parallel column slices of the [`ColumnarStore`] — callers read through
/// one indexed API (`len` / [`entry`](TimelineView::entry) /
/// [`value_at`](TimelineView::value_at) / …) or the by-value
/// [`iter`](TimelineView::iter), and never learn which engine backs the
/// data. On the columnar path, [`values`](TimelineView::values) and
/// [`times`](TimelineView::times) are contiguous column copies — the
/// cache-friendly scans the detectors feed on.
///
/// The type is `Copy`; methods take `self`, and window restriction
/// ([`in_window`](TimelineView::in_window)) returns a sub-view borrowing
/// the same storage. Detector entry points accept
/// `impl Into<TimelineView>` and therefore work identically on
/// `&ProductTimeline` and on views.
#[derive(Debug, Clone, Copy)]
pub struct TimelineView<'a> {
    repr: TlRepr<'a>,
}

impl<'a> TimelineView<'a> {
    pub(crate) fn from_rows(entries: &'a [RatingEntry]) -> Self {
        TimelineView {
            repr: TlRepr::Rows(entries),
        }
    }

    pub(crate) fn from_columns(cols: ColumnsRef<'a>) -> Self {
        TimelineView {
            repr: TlRepr::Cols(cols),
        }
    }

    /// Returns the number of ratings in the view.
    #[must_use]
    pub fn len(self) -> usize {
        match self.repr {
            TlRepr::Rows(entries) => entries.len(),
            TlRepr::Cols(cols) => cols.ids.len(),
        }
    }

    /// Returns `true` if the view holds no ratings.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }

    /// Returns the `index`-th entry (by value; entries are `Copy`).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds, like slice indexing.
    #[must_use]
    pub fn entry(self, index: usize) -> RatingEntry {
        match self.repr {
            TlRepr::Rows(entries) => entries[index],
            TlRepr::Cols(cols) => crate::store::assemble_entry(&cols, index),
        }
    }

    /// Returns the `index`-th rating identifier.
    #[must_use]
    pub fn id_at(self, index: usize) -> RatingId {
        match self.repr {
            TlRepr::Rows(entries) => entries[index].id(),
            TlRepr::Cols(cols) => cols.ids[index],
        }
    }

    /// Returns the `index`-th rating time.
    #[must_use]
    pub fn time_at(self, index: usize) -> Timestamp {
        match self.repr {
            TlRepr::Rows(entries) => entries[index].time(),
            TlRepr::Cols(cols) => cols.times[index],
        }
    }

    /// Returns the `index`-th rating value.
    #[must_use]
    pub fn value_at(self, index: usize) -> f64 {
        match self.repr {
            TlRepr::Rows(entries) => entries[index].value(),
            TlRepr::Cols(cols) => cols.values[index],
        }
    }

    /// Returns the `index`-th rater.
    #[must_use]
    pub fn rater_at(self, index: usize) -> RaterId {
        match self.repr {
            TlRepr::Rows(entries) => entries[index].rater(),
            TlRepr::Cols(cols) => cols.raters[index],
        }
    }

    /// Returns the `index`-th provenance.
    #[must_use]
    pub fn source_at(self, index: usize) -> RatingSource {
        match self.repr {
            TlRepr::Rows(entries) => entries[index].source(),
            TlRepr::Cols(cols) => cols.sources[index],
        }
    }

    /// Returns the first entry, if any.
    #[must_use]
    pub fn first(self) -> Option<RatingEntry> {
        if self.is_empty() {
            None
        } else {
            Some(self.entry(0))
        }
    }

    /// Returns the last entry, if any.
    #[must_use]
    pub fn last(self) -> Option<RatingEntry> {
        self.len().checked_sub(1).map(|i| self.entry(i))
    }

    /// Iterates entries by value in time order.
    pub fn iter(self) -> impl Iterator<Item = RatingEntry> + 'a {
        (0..self.len()).map(move |i| self.entry(i))
    }

    /// Copies the entries into a vector (test/oracle convenience).
    #[must_use]
    pub fn to_vec(self) -> Vec<RatingEntry> {
        self.iter().collect()
    }

    /// Returns the sub-view over `[lo, hi)` of this view's entries.
    fn subrange(self, lo: usize, hi: usize) -> TimelineView<'a> {
        match self.repr {
            TlRepr::Rows(entries) => TimelineView::from_rows(&entries[lo..hi]),
            TlRepr::Cols(cols) => TimelineView::from_columns(ColumnsRef {
                product: cols.product,
                ids: &cols.ids[lo..hi],
                times: &cols.times[lo..hi],
                values: &cols.values[lo..hi],
                raters: &cols.raters[lo..hi],
                sources: &cols.sources[lo..hi],
            }),
        }
    }

    /// Returns the sub-view of entries whose times fall in `window`
    /// (half-open, two binary searches).
    #[must_use]
    pub fn in_window(self, window: TimeWindow) -> TimelineView<'a> {
        let lo = self.lower_bound(window.start());
        let hi = self.lower_bound(window.end());
        self.subrange(lo, hi)
    }

    /// Index of the first entry with `time >= t`.
    fn lower_bound(self, t: Timestamp) -> usize {
        match self.repr {
            TlRepr::Rows(entries) => entries.partition_point(|e| e.time() < t),
            TlRepr::Cols(cols) => cols.times.partition_point(|&time| time < t),
        }
    }

    /// Returns all rating values in time order.
    ///
    /// On the columnar path this is a straight copy of the contiguous
    /// `f64` column.
    #[must_use]
    pub fn values(self) -> Vec<f64> {
        match self.repr {
            TlRepr::Rows(entries) => entries.iter().map(RatingEntry::value).collect(),
            TlRepr::Cols(cols) => cols.values.to_vec(),
        }
    }

    /// Returns all rating times in time order.
    #[must_use]
    pub fn times(self) -> Vec<Timestamp> {
        match self.repr {
            TlRepr::Rows(entries) => entries.iter().map(RatingEntry::time).collect(),
            TlRepr::Cols(cols) => cols.times.to_vec(),
        }
    }

    /// Returns the mean rating value, or `None` if the view is empty.
    #[must_use]
    pub fn mean_value(self) -> Option<f64> {
        if self.is_empty() {
            None
        } else {
            let sum: f64 = match self.repr {
                TlRepr::Rows(entries) => entries.iter().map(RatingEntry::value).sum(),
                TlRepr::Cols(cols) => cols.values.iter().sum(),
            };
            Some(sum / self.len() as f64)
        }
    }

    /// Counts ratings per whole day over `window`; see
    /// [`ProductTimeline::daily_counts`].
    #[must_use]
    pub fn daily_counts(self, window: TimeWindow) -> Vec<u32> {
        self.daily_counts_filtered(window, |_| true)
    }

    /// Counts ratings per whole day, restricted to values accepted by
    /// `keep`; see [`ProductTimeline::daily_counts_filtered`].
    #[must_use]
    pub fn daily_counts_filtered<F>(self, window: TimeWindow, mut keep: F) -> Vec<u32>
    where
        F: FnMut(f64) -> bool,
    {
        let days = window.length().get().ceil() as usize;
        let mut counts = vec![0u32; days];
        let scoped = self.in_window(window);
        for i in 0..scoped.len() {
            if keep(scoped.value_at(i)) {
                let offset = scoped.time_at(i).as_days() - window.start().as_days();
                let idx = (offset.floor() as usize).min(days.saturating_sub(1));
                counts[idx] += 1;
            }
        }
        counts
    }
}

/// Views are equal when their logical entry sequences are equal, no
/// matter which engine (rows or columns) backs either side — this is
/// what the cross-engine oracle tests assert with.
impl<'a, 'b> PartialEq<TimelineView<'b>> for TimelineView<'a> {
    fn eq(&self, other: &TimelineView<'b>) -> bool {
        self.len() == other.len() && (0..self.len()).all(|i| self.entry(i) == other.entry(i))
    }
}

impl<'a> From<&'a ProductTimeline> for TimelineView<'a> {
    fn from(timeline: &'a ProductTimeline) -> Self {
        timeline.view()
    }
}

/// The storage engine actually backing a dataset (see [`crate::store`]).
#[derive(Debug, Clone)]
enum Backend {
    Columnar(ColumnarStore),
    Row(RowStore),
}

impl Backend {
    fn store(&self) -> &dyn RatingStore {
        match self {
            Backend::Columnar(s) => s,
            Backend::Row(s) => s,
        }
    }

    fn store_mut(&mut self) -> &mut dyn RatingStore {
        match self {
            Backend::Columnar(s) => s,
            Backend::Row(s) => s,
        }
    }

    fn empty_like(&self) -> Backend {
        match self {
            Backend::Columnar(_) => Backend::Columnar(ColumnarStore::new()),
            Backend::Row(_) => Backend::Row(RowStore::new()),
        }
    }
}

/// A collection of rating histories for a set of products.
///
/// This is the unit the aggregation schemes and the Rating Challenge operate
/// on: the challenge distributes one fair dataset, attackers produce a
/// modified copy with unfair ratings inserted, and the MP metric compares
/// aggregation results on the two.
///
/// Storage is delegated to a [`RatingStore`] engine: the sharded
/// [`ColumnarStore`] by default, or the [`RowStore`] oracle when
/// `RRS_STORE=row` is set (or [`row_oracle`](RatingDataset::row_oracle)
/// is used). All reads go through [`TimelineView`]s, so consumers are
/// engine-agnostic and the two engines can be byte-diffed against each
/// other.
///
/// # Example
///
/// ```
/// use rrs_core::{ProductId, RaterId, Rating, RatingDataset, RatingSource, RatingValue, Timestamp};
/// # fn main() -> Result<(), rrs_core::CoreError> {
/// let mut clean = RatingDataset::new();
/// for day in 0..10 {
///     clean.insert(
///         Rating::new(
///             RaterId::new(day),
///             ProductId::new(0),
///             Timestamp::new(f64::from(day))?,
///             RatingValue::new(4.0)?,
///         ),
///         RatingSource::Fair,
///     );
/// }
/// let mut attacked = clean.clone();
/// attacked.insert(
///     Rating::new(RaterId::new(100), ProductId::new(0), Timestamp::new(5.0)?, RatingValue::new(0.0)?),
///     RatingSource::Unfair,
/// );
/// assert_eq!(clean.len(), 10);
/// assert_eq!(attacked.unfair_ids().len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RatingDataset {
    backend: Backend,
    next_id: u64,
}

impl Default for RatingDataset {
    fn default() -> Self {
        RatingDataset::new()
    }
}

/// Datasets are equal when their id counters and logical contents agree,
/// regardless of which engine holds the ratings.
impl PartialEq for RatingDataset {
    fn eq(&self, other: &Self) -> bool {
        self.next_id == other.next_id && self.store().timelines() == other.store().timelines()
    }
}

impl RatingDataset {
    /// Creates an empty dataset on the engine selected by the
    /// environment: the columnar store, or the row oracle when
    /// `RRS_STORE=row`.
    #[must_use]
    pub fn new() -> Self {
        if crate::store::row_store_forced() {
            RatingDataset::row_oracle()
        } else {
            RatingDataset::columnar()
        }
    }

    /// Creates an empty dataset pinned to the sharded columnar engine.
    #[must_use]
    pub fn columnar() -> Self {
        RatingDataset {
            backend: Backend::Columnar(ColumnarStore::new()),
            next_id: 0,
        }
    }

    /// Creates an empty dataset pinned to the row-store oracle engine.
    #[must_use]
    pub fn row_oracle() -> Self {
        RatingDataset {
            backend: Backend::Row(RowStore::new()),
            next_id: 0,
        }
    }

    /// Returns `true` when the row-oracle engine backs this dataset.
    #[must_use]
    pub fn is_row_backed(&self) -> bool {
        matches!(self.backend, Backend::Row(_))
    }

    fn store(&self) -> &dyn RatingStore {
        self.backend.store()
    }

    /// Inserts a rating with the given provenance and returns its
    /// identifier.
    pub fn insert(&mut self, rating: Rating, source: RatingSource) -> RatingId {
        let id = RatingId(self.next_id);
        self.next_id += 1;
        self.backend
            .store_mut()
            .insert_entry(RatingEntry { id, rating, source });
        id
    }

    /// Inserts every rating from an iterator, all with the same provenance.
    ///
    /// Identifiers are assigned in iterator order exactly as repeated
    /// [`insert`](Self::insert) calls would, but the engine ingests the
    /// batch in bulk — the columnar store buckets it per shard and runs
    /// the shards through [`crate::par::par_map_owned`].
    pub fn extend_from<I>(&mut self, ratings: I, source: RatingSource)
    where
        I: IntoIterator<Item = Rating>,
    {
        let entries: Vec<RatingEntry> = ratings
            .into_iter()
            .map(|rating| {
                let id = RatingId(self.next_id);
                self.next_id += 1;
                RatingEntry { id, rating, source }
            })
            .collect();
        self.backend.store_mut().bulk_insert(entries);
    }

    /// Returns the timeline view for `product`, if any rating exists for
    /// it.
    #[must_use]
    pub fn product(&self, product: ProductId) -> Option<TimelineView<'_>> {
        self.store().timeline(product)
    }

    /// Iterates over `(product, timeline)` pairs in product order.
    pub fn products(&self) -> impl Iterator<Item = (ProductId, TimelineView<'_>)> {
        self.store().timelines().into_iter()
    }

    /// Returns the product identifiers present in the dataset.
    #[must_use]
    pub fn product_ids(&self) -> Vec<ProductId> {
        self.store()
            .timelines()
            .into_iter()
            .map(|(pid, _)| pid)
            .collect()
    }

    /// Returns the total number of ratings across all products.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store().len()
    }

    /// Returns `true` if the dataset holds no ratings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store().is_empty()
    }

    /// Returns the earliest and latest rating time across all products.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Empty`] if the dataset holds no ratings.
    pub fn time_span(&self) -> Result<(Timestamp, Timestamp), CoreError> {
        let mut span: Option<(Timestamp, Timestamp)> = None;
        for (_, tl) in self.store().timelines() {
            if let (Some(first), Some(last)) = (tl.first(), tl.last()) {
                span = Some(match span {
                    None => (first.time(), last.time()),
                    Some((lo, hi)) => (lo.min(first.time()), hi.max(last.time())),
                });
            }
        }
        span.ok_or(CoreError::Empty { what: "dataset" })
    }

    /// Returns the identifiers of all ratings with
    /// [`RatingSource::Unfair`] provenance.
    #[must_use]
    pub fn unfair_ids(&self) -> Vec<RatingId> {
        let mut out = Vec::new();
        for (_, tl) in self.store().timelines() {
            for i in 0..tl.len() {
                if tl.source_at(i).is_unfair() {
                    out.push(tl.id_at(i));
                }
            }
        }
        out
    }

    /// Returns the distinct raters appearing in the dataset.
    #[must_use]
    pub fn raters(&self) -> Vec<RaterId> {
        let mut set = std::collections::BTreeSet::new();
        for (_, tl) in self.store().timelines() {
            for i in 0..tl.len() {
                set.insert(tl.rater_at(i));
            }
        }
        set.into_iter().collect()
    }

    /// Returns a copy of this dataset (same engine) containing only the
    /// entries accepted by `keep`, with identifiers preserved.
    fn filtered_copy<F>(&self, mut keep: F) -> RatingDataset
    where
        F: FnMut(&RatingEntry) -> bool,
    {
        let mut kept = Vec::new();
        for (_, tl) in self.store().timelines() {
            kept.extend(tl.iter().filter(|e| keep(e)));
        }
        let mut out = RatingDataset {
            backend: self.backend.empty_like(),
            next_id: self.next_id,
        };
        out.backend.store_mut().bulk_insert(kept);
        out
    }

    /// Returns a copy of this dataset containing only fair ratings.
    ///
    /// Identifiers of the retained ratings are preserved.
    #[must_use]
    pub fn fair_only(&self) -> RatingDataset {
        self.filtered_copy(|e| !e.source().is_unfair())
    }

    /// Iterates over every entry in the dataset, grouped by product and in
    /// time order within each product.
    pub fn iter(&self) -> impl Iterator<Item = RatingEntry> + '_ {
        self.store()
            .timelines()
            .into_iter()
            .flat_map(|(_, tl)| tl.iter())
    }

    /// Returns a copy containing only the ratings whose times fall in
    /// `window`, with identifiers preserved.
    ///
    /// Prefer [`prefix_view`](Self::prefix_view) on hot paths: it exposes
    /// the same product set without copying a single rating. `restricted`
    /// remains for callers that need an owned, independently mutable
    /// dataset.
    #[must_use]
    pub fn restricted(&self, window: TimeWindow) -> RatingDataset {
        self.filtered_copy(|e| window.contains(e.time()))
    }

    /// Returns a borrowed view of the whole dataset.
    ///
    /// Products with no ratings are omitted, so `view()` and
    /// [`prefix_view`](Self::prefix_view) over a window covering the
    /// whole time span expose the same product set.
    #[must_use]
    pub fn view(&self) -> DatasetView<'_> {
        DatasetView {
            products: self
                .store()
                .timelines()
                .into_iter()
                .filter(|(_, tl)| !tl.is_empty())
                .collect(),
        }
    }

    /// Returns a borrowed view of the ratings whose times fall in
    /// `window` — the zero-copy equivalent of
    /// [`restricted`](Self::restricted), covering the same products (ones
    /// with no rating in the window are omitted).
    ///
    /// The P-scheme runs *online*: at each monthly trust-update epoch it
    /// re-detects over the data available so far. Materializing that
    /// prefix with `restricted` made epoch *e* re-clone epochs `0..e` —
    /// O(epochs × ratings) allocation over a run; this view borrows each
    /// product's in-window sub-view instead, so an epoch costs two binary
    /// searches per product.
    #[must_use]
    pub fn prefix_view(&self, window: TimeWindow) -> DatasetView<'_> {
        let mut products = Vec::new();
        for (pid, tl) in self.store().timelines() {
            let scoped = tl.in_window(window);
            if !scoped.is_empty() {
                products.push((pid, scoped));
            }
        }
        DatasetView { products }
    }
}

/// A borrowed read view of a dataset: the product timelines visible to
/// one detection or trust-update pass.
///
/// Produced by [`RatingDataset::view`] (everything) and
/// [`RatingDataset::prefix_view`] (one time window, zero-copy). APIs that
/// only read ratings accept `impl Into<DatasetView>`, so `&RatingDataset`
/// and `&DatasetView` are interchangeable at call sites.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetView<'a> {
    products: Vec<(ProductId, TimelineView<'a>)>,
}

impl<'a> DatasetView<'a> {
    /// Returns the `(product, timeline)` pairs in ascending product
    /// order.
    #[must_use]
    pub fn products(&self) -> &[(ProductId, TimelineView<'a>)] {
        &self.products
    }

    /// Returns the view of `product`, if it has any rating here.
    #[must_use]
    pub fn product(&self, product: ProductId) -> Option<TimelineView<'a>> {
        self.products
            .binary_search_by_key(&product, |(pid, _)| *pid)
            .ok()
            .map(|i| self.products[i].1)
    }

    /// Returns the total number of ratings across all products.
    #[must_use]
    pub fn len(&self) -> usize {
        self.products.iter().map(|(_, tl)| tl.len()).sum()
    }

    /// Returns `true` if the view holds no ratings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.products.iter().all(|(_, tl)| tl.is_empty())
    }
}

impl<'a> From<&'a RatingDataset> for DatasetView<'a> {
    fn from(dataset: &'a RatingDataset) -> Self {
        dataset.view()
    }
}

impl<'a> From<&DatasetView<'a>> for DatasetView<'a> {
    fn from(view: &DatasetView<'a>) -> Self {
        view.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::vec_of;
    use crate::RatingValue;
    use crate::{prop_assert, prop_assert_eq, props};

    fn rating(rater: u32, product: u16, day: f64, value: f64) -> Rating {
        Rating::new(
            RaterId::new(rater),
            ProductId::new(product),
            Timestamp::new(day).unwrap(),
            RatingValue::new(value).unwrap(),
        )
    }

    fn window(a: f64, b: f64) -> TimeWindow {
        TimeWindow::new(Timestamp::new(a).unwrap(), Timestamp::new(b).unwrap()).unwrap()
    }

    /// Builds the same dataset on both engines.
    fn on_both_engines(days: &[f64]) -> (RatingDataset, RatingDataset) {
        let mut col = RatingDataset::columnar();
        let mut row = RatingDataset::row_oracle();
        for (i, day) in days.iter().enumerate() {
            let r = rating(i as u32, (i % 5) as u16, *day, 1.0 + (i % 4) as f64);
            col.insert(r, RatingSource::Fair);
            row.insert(r, RatingSource::Fair);
        }
        (col, row)
    }

    #[test]
    fn insert_assigns_sequential_ids() {
        let mut d = RatingDataset::new();
        let a = d.insert(rating(1, 0, 0.0, 4.0), RatingSource::Fair);
        let b = d.insert(rating(2, 0, 1.0, 4.0), RatingSource::Fair);
        assert!(a < b);
        assert_eq!(a.value() + 1, b.value());
    }

    #[test]
    fn entries_sorted_by_time_regardless_of_insert_order() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 5.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 1.0, 3.0), RatingSource::Fair);
        d.insert(rating(3, 0, 3.0, 2.0), RatingSource::Fair);
        let times = d.product(ProductId::new(0)).unwrap().times();
        assert_eq!(
            times.iter().map(|t| t.as_days()).collect::<Vec<_>>(),
            vec![1.0, 3.0, 5.0]
        );
    }

    #[test]
    fn ties_in_time_preserve_insertion_order() {
        let mut d = RatingDataset::new();
        let a = d.insert(rating(1, 0, 2.0, 1.0), RatingSource::Fair);
        let b = d.insert(rating(2, 0, 2.0, 2.0), RatingSource::Fair);
        let tl = d.product(ProductId::new(0)).unwrap();
        assert_eq!(tl.entry(0).id(), a);
        assert_eq!(tl.entry(1).id(), b);
    }

    #[test]
    fn in_window_is_half_open() {
        let mut d = RatingDataset::new();
        for day in 0..10 {
            d.insert(rating(day, 0, f64::from(day), 4.0), RatingSource::Fair);
        }
        let tl = d.product(ProductId::new(0)).unwrap();
        let scoped = tl.in_window(window(2.0, 5.0));
        assert_eq!(scoped.len(), 3);
        assert_eq!(scoped.time_at(0).as_days(), 2.0);
        assert_eq!(scoped.time_at(2).as_days(), 4.0);
    }

    #[test]
    fn daily_counts_buckets_correctly() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 0.2, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 0.9, 4.0), RatingSource::Fair);
        d.insert(rating(3, 0, 1.5, 4.0), RatingSource::Fair);
        d.insert(rating(4, 0, 2.0, 4.0), RatingSource::Fair);
        let counts = d
            .product(ProductId::new(0))
            .unwrap()
            .daily_counts(window(0.0, 3.0));
        assert_eq!(counts, vec![2, 1, 1]);
    }

    #[test]
    fn daily_counts_filtered_splits_high_low() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 0.5, 5.0), RatingSource::Fair);
        d.insert(rating(2, 0, 0.6, 1.0), RatingSource::Fair);
        let tl = d.product(ProductId::new(0)).unwrap();
        let high = tl.daily_counts_filtered(window(0.0, 1.0), |v| v > 2.5);
        let low = tl.daily_counts_filtered(window(0.0, 1.0), |v| v < 2.5);
        assert_eq!(high, vec![1]);
        assert_eq!(low, vec![1]);
    }

    #[test]
    fn clone_preserves_ids_for_ground_truth() {
        let mut clean = RatingDataset::new();
        let fair_id = clean.insert(rating(1, 0, 0.0, 4.0), RatingSource::Fair);
        let mut attacked = clean.clone();
        let unfair_id = attacked.insert(rating(99, 0, 1.0, 0.0), RatingSource::Unfair);
        assert_ne!(fair_id, unfair_id);
        assert_eq!(attacked.unfair_ids(), vec![unfair_id]);
        assert!(clean.unfair_ids().is_empty());
    }

    #[test]
    fn fair_only_strips_unfair_and_keeps_ids() {
        let mut d = RatingDataset::new();
        let fair_id = d.insert(rating(1, 0, 0.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 1.0, 0.0), RatingSource::Unfair);
        let clean = d.fair_only();
        assert_eq!(clean.len(), 1);
        assert_eq!(clean.iter().next().unwrap().id(), fair_id);
    }

    #[test]
    fn restricted_keeps_ids_and_window_only() {
        let mut d = RatingDataset::new();
        let a = d.insert(rating(1, 0, 5.0, 4.0), RatingSource::Fair);
        let _b = d.insert(rating(2, 0, 50.0, 4.0), RatingSource::Fair);
        let r = d.restricted(window(0.0, 30.0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().unwrap().id(), a);
        // New insertions after restriction do not collide with old ids.
        let mut r2 = r.clone();
        let c = r2.insert(rating(3, 0, 10.0, 4.0), RatingSource::Unfair);
        assert!(c.value() >= 2);
    }

    #[test]
    fn time_span_on_empty_errors() {
        assert!(RatingDataset::new().time_span().is_err());
    }

    #[test]
    fn time_span_spans_products() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 5.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 1, 1.0, 4.0), RatingSource::Fair);
        d.insert(rating(3, 1, 9.0, 4.0), RatingSource::Fair);
        let (lo, hi) = d.time_span().unwrap();
        assert_eq!(lo.as_days(), 1.0);
        assert_eq!(hi.as_days(), 9.0);
    }

    #[test]
    fn raters_are_distinct_and_sorted() {
        let mut d = RatingDataset::new();
        d.insert(rating(5, 0, 0.0, 4.0), RatingSource::Fair);
        d.insert(rating(1, 1, 1.0, 4.0), RatingSource::Fair);
        d.insert(rating(5, 1, 2.0, 4.0), RatingSource::Fair);
        assert_eq!(d.raters(), vec![RaterId::new(1), RaterId::new(5)]);
    }

    #[test]
    fn mean_value() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 0.0, 2.0), RatingSource::Fair);
        d.insert(rating(2, 0, 1.0, 4.0), RatingSource::Fair);
        let tl = d.product(ProductId::new(0)).unwrap();
        assert_eq!(tl.mean_value(), Some(3.0));
        assert_eq!(ProductTimeline::default().mean_value(), None);
    }

    #[test]
    fn prefix_view_matches_restricted() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 5.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 50.0, 4.0), RatingSource::Fair);
        d.insert(rating(3, 1, 70.0, 2.0), RatingSource::Unfair);
        let w = window(0.0, 30.0);
        let view = d.prefix_view(w);
        let copy = d.restricted(w);
        // Same product set, same entries, same order — without copying.
        assert_eq!(view.products().len(), copy.products().count());
        for (pid, tl) in view.products() {
            assert_eq!(
                Some(tl.to_vec()),
                copy.product(*pid).map(TimelineView::to_vec)
            );
        }
        assert_eq!(view.len(), copy.len());
        // Products with nothing in the window are omitted, as in
        // `restricted`.
        assert!(view.product(ProductId::new(1)).is_none());
    }

    #[test]
    fn dataset_view_product_lookup() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 3, 1.0, 4.0), RatingSource::Fair);
        d.insert(rating(2, 7, 2.0, 3.0), RatingSource::Fair);
        let view = d.view();
        assert_eq!(view.products().len(), 2);
        assert_eq!(
            view.product(ProductId::new(7)).map(TimelineView::len),
            Some(1)
        );
        assert!(view.product(ProductId::new(5)).is_none());
        assert!(!view.is_empty());
        assert_eq!(view.len(), 2);
    }

    #[test]
    fn timeline_view_mirrors_timeline() {
        let mut d = RatingDataset::new();
        d.insert(rating(1, 0, 0.2, 4.0), RatingSource::Fair);
        d.insert(rating(2, 0, 1.5, 2.0), RatingSource::Fair);
        let tl = d.product(ProductId::new(0)).unwrap();
        assert_eq!(tl.iter().count(), 2);
        assert_eq!(tl.first().map(|e| e.rater()), Some(RaterId::new(1)));
        assert_eq!(tl.last().map(|e| e.rater()), Some(RaterId::new(2)));
        let w = window(0.0, 3.0);
        assert_eq!(tl.daily_counts(w), vec![1, 1, 0]);
        assert_eq!(tl.in_window(w), tl);
    }

    #[test]
    fn row_and_columnar_datasets_compare_equal() {
        let days = [5.0, 1.0, 40.0, 3.0, 3.0, 88.0, 12.5, 0.0];
        let (col, row) = on_both_engines(&days);
        assert!(!col.is_row_backed());
        assert!(row.is_row_backed());
        assert_eq!(col, row);
        assert_eq!(col.view(), row.view());
        assert_eq!(
            col.prefix_view(window(0.0, 30.0)),
            row.prefix_view(window(0.0, 30.0))
        );
    }

    props! {
        #[test]
        fn prefix_view_equals_restricted_on_random_windows(
            days in vec_of(0.0f64..90.0, 0..60)
        ) {
            let mut d = RatingDataset::new();
            for (i, day) in days.iter().enumerate() {
                d.insert(rating(i as u32, (i % 3) as u16, *day, 3.0), RatingSource::Fair);
            }
            let w = window(20.0, 60.0);
            let view = d.prefix_view(w);
            let copy = d.restricted(w);
            prop_assert_eq!(view.len(), copy.len());
            for (pid, tl) in view.products() {
                let owned = copy.product(*pid).map(TimelineView::to_vec);
                prop_assert_eq!(Some(tl.to_vec()), owned);
            }
        }

        #[test]
        fn timeline_always_sorted(days in vec_of(0.0f64..100.0, 1..50)) {
            let mut d = RatingDataset::new();
            for (i, day) in days.iter().enumerate() {
                d.insert(rating(i as u32, 0, *day, 3.0), RatingSource::Fair);
            }
            let times = d.product(ProductId::new(0)).unwrap().times();
            for pair in times.windows(2) {
                prop_assert!(pair[0] <= pair[1]);
            }
        }

        #[test]
        fn daily_counts_sum_to_window_population(days in vec_of(0.0f64..30.0, 0..80)) {
            let mut d = RatingDataset::new();
            for (i, day) in days.iter().enumerate() {
                d.insert(rating(i as u32, 0, *day, 3.0), RatingSource::Fair);
            }
            if let Some(tl) = d.product(ProductId::new(0)) {
                let w = window(0.0, 30.0);
                let counts = tl.daily_counts(w);
                let total: u32 = counts.iter().sum();
                prop_assert_eq!(total as usize, tl.in_window(w).len());
            }
        }

        // Cross-engine oracle: every read API agrees between the row
        // and columnar engines on arbitrary data.
        #[test]
        fn row_and_columnar_engines_are_bit_identical(
            days in vec_of(0.0f64..120.0, 0..80)
        ) {
            let (col, row) = on_both_engines(&days);
            prop_assert_eq!(col.len(), row.len());
            prop_assert_eq!(col.product_ids(), row.product_ids());
            prop_assert_eq!(col.raters(), row.raters());
            prop_assert_eq!(col.view(), row.view());
            let w = window(15.0, 75.0);
            prop_assert_eq!(col.prefix_view(w), row.prefix_view(w));
            for (pid, ctl) in col.view().products() {
                let rtl = row.product(*pid).unwrap();
                // Bit-level agreement on the hot columns.
                let cbits: Vec<u64> =
                    ctl.values().iter().map(|v| v.to_bits()).collect();
                let rbits: Vec<u64> =
                    rtl.values().iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(cbits, rbits);
                prop_assert_eq!(ctl.times(), rtl.times());
            }
        }

        // `view()` omits empty timelines, so it exposes exactly the
        // product set of a whole-span `prefix_view` (satellite: the two
        // "whole dataset" views used to disagree on products() length).
        #[test]
        fn view_matches_whole_span_prefix_view(
            days in vec_of(0.0f64..50.0, 1..40)
        ) {
            let mut d = RatingDataset::new();
            for (i, day) in days.iter().enumerate() {
                d.insert(rating(i as u32, (i % 4) as u16, *day, 3.0), RatingSource::Fair);
            }
            let whole = window(0.0, 51.0);
            let full = d.view();
            let prefixed = d.prefix_view(whole);
            prop_assert_eq!(full.products().len(), prefixed.products().len());
            prop_assert_eq!(full, prefixed);
        }

        // The binary-search contract of `DatasetView::product`: views
        // from every constructor keep products strictly ascending.
        #[test]
        fn dataset_views_keep_products_sorted(
            days in vec_of(0.0f64..60.0, 0..50)
        ) {
            let (col, row) = on_both_engines(&days);
            let w = window(10.0, 45.0);
            for view in [col.view(), row.view(), col.prefix_view(w), row.prefix_view(w)] {
                for pair in view.products().windows(2) {
                    prop_assert!(pair[0].0 < pair[1].0);
                }
                // And the lookup actually finds every product.
                for (pid, tl) in view.products() {
                    prop_assert_eq!(view.product(*pid).map(TimelineView::len), Some(tl.len()));
                }
            }
        }

        // Bulk ingest must agree with one-at-a-time inserts on both
        // engines and at any thread count.
        #[test]
        fn extend_from_matches_repeated_insert(
            days in vec_of(0.0f64..90.0, 0..60)
        ) {
            let ratings: Vec<Rating> = days
                .iter()
                .enumerate()
                .map(|(i, day)| rating(i as u32, (i % 6) as u16, *day, 2.0))
                .collect();
            for fresh in [RatingDataset::columnar, RatingDataset::row_oracle] {
                let mut serial = fresh();
                for r in &ratings {
                    serial.insert(*r, RatingSource::Fair);
                }
                let mut bulk = fresh();
                crate::par::with_threads(8, || {
                    bulk.extend_from(ratings.iter().copied(), RatingSource::Fair);
                });
                prop_assert_eq!(&serial, &bulk);
            }
        }
    }
}
