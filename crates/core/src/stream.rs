//! Sliding-window utilities over rating streams.
//!
//! The paper's detectors slide a window along the rating sequence and test
//! the first half against the second half (mean change) or the left days
//! against the right days (arrival-rate change). Near the stream edges the
//! paper shrinks the window symmetrically; [`centered_windows`] implements
//! exactly that scheme for index-based streams.

use std::ops::Range;

/// A symmetric window around a center index, split into its two halves.
///
/// `left` is `[center - w, center)` and `right` is `[center, center + w)`
/// for the (possibly edge-shrunken) half-width `w`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CenteredWindow {
    /// The center index the test is attributed to.
    pub center: usize,
    /// Indices of the first half.
    pub left: Range<usize>,
    /// Indices of the second half.
    pub right: Range<usize>,
}

impl CenteredWindow {
    /// The half-width actually used (after edge shrinking).
    #[must_use]
    pub fn half_width(&self) -> usize {
        self.left.len()
    }
}

/// Iterates symmetric two-sided windows over a stream of length `len`.
///
/// For every center `k` in `min_half..=len - min_half`, the half-width is
/// `min(half, k, len - k)`, following the paper's note that near the edges
/// "a smaller window size" is used. Centers that cannot support even
/// `min_half` samples per side are skipped.
///
/// # Panics
///
/// Panics if `min_half` is zero — a zero-width half makes every test
/// degenerate.
#[must_use]
pub fn centered_windows(len: usize, half: usize, min_half: usize) -> Vec<CenteredWindow> {
    assert!(min_half > 0, "min_half must be at least 1");
    let mut out = Vec::new();
    if len < 2 * min_half {
        return out;
    }
    for center in min_half..=(len - min_half) {
        let w = half.min(center).min(len - center);
        if w < min_half {
            continue;
        }
        out.push(CenteredWindow {
            center,
            left: (center - w)..center,
            right: center..(center + w),
        });
    }
    out
}

/// Splits `0..len` into maximal segments separated by `peaks`.
///
/// Each peak index starts a new segment; peaks outside `0..len`, duplicate
/// peaks, and unsorted input are tolerated. Used by detectors to cut a
/// rating stream at the peaks of an indicator curve and then judge each
/// segment (paper Sections IV-B.3 and IV-C.3).
#[must_use]
pub fn split_at_peaks(len: usize, peaks: &[usize]) -> Vec<Range<usize>> {
    let mut cuts: Vec<usize> = peaks
        .iter()
        .copied()
        .filter(|&p| p > 0 && p < len)
        .collect();
    cuts.sort_unstable();
    cuts.dedup();
    let mut out = Vec::with_capacity(cuts.len() + 1);
    let mut start = 0;
    for cut in cuts {
        out.push(start..cut);
        start = cut;
    }
    if start < len {
        out.push(start..len);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::vec_of;
    use crate::{prop_assert, prop_assert_eq, props};

    #[test]
    fn windows_full_width_in_middle() {
        let ws = centered_windows(100, 10, 2);
        let mid = ws.iter().find(|w| w.center == 50).unwrap();
        assert_eq!(mid.left, 40..50);
        assert_eq!(mid.right, 50..60);
        assert_eq!(mid.half_width(), 10);
    }

    #[test]
    fn windows_shrink_at_edges() {
        let ws = centered_windows(100, 10, 2);
        let first = ws.first().unwrap();
        assert_eq!(first.center, 2);
        assert_eq!(first.half_width(), 2);
        let last = ws.last().unwrap();
        assert_eq!(last.center, 98);
        assert_eq!(last.half_width(), 2);
    }

    #[test]
    fn short_stream_yields_nothing() {
        assert!(centered_windows(3, 10, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "min_half")]
    fn zero_min_half_panics() {
        let _ = centered_windows(10, 3, 0);
    }

    #[test]
    fn split_no_peaks_is_whole_range() {
        assert_eq!(split_at_peaks(10, &[]), vec![0..10]);
    }

    #[test]
    fn split_at_two_peaks() {
        assert_eq!(split_at_peaks(10, &[3, 7]), vec![0..3, 3..7, 7..10]);
    }

    #[test]
    fn split_ignores_out_of_range_and_duplicates() {
        assert_eq!(split_at_peaks(10, &[0, 3, 3, 10, 99]), vec![0..3, 3..10]);
    }

    #[test]
    fn split_tolerates_unsorted() {
        assert_eq!(split_at_peaks(10, &[7, 3]), vec![0..3, 3..7, 7..10]);
    }

    props! {
        #[test]
        fn windows_are_in_bounds(len in 0usize..200, half in 1usize..40, min_half in 1usize..5) {
            for w in centered_windows(len, half, min_half) {
                prop_assert!(w.right.end <= len);
                prop_assert_eq!(w.left.end, w.center);
                prop_assert_eq!(w.right.start, w.center);
                prop_assert_eq!(w.left.len(), w.right.len());
                prop_assert!(w.left.len() >= min_half);
            }
        }

        #[test]
        fn segments_partition_range(len in 1usize..100, peaks in vec_of(0usize..120, 0..10)) {
            let segs = split_at_peaks(len, &peaks);
            prop_assert_eq!(segs.first().unwrap().start, 0);
            prop_assert_eq!(segs.last().unwrap().end, len);
            for pair in segs.windows(2) {
                prop_assert_eq!(pair[0].end, pair[1].start);
                prop_assert!(!pair[0].is_empty());
            }
        }
    }
}
