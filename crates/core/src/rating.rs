use crate::{ProductId, RaterId, RatingValue, Timestamp};
use std::fmt;

/// A single rating event: `rater` rated `product` with `value` at `time`.
///
/// ```
/// use rrs_core::{ProductId, RaterId, Rating, RatingValue, Timestamp};
/// # fn main() -> Result<(), rrs_core::CoreError> {
/// let r = Rating::new(
///     RaterId::new(7),
///     ProductId::new(1),
///     Timestamp::new(12.0)?,
///     RatingValue::new(4.0)?,
/// );
/// assert_eq!(r.value().get(), 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rating {
    rater: RaterId,
    product: ProductId,
    time: Timestamp,
    value: RatingValue,
}

impl Rating {
    /// Creates a rating event.
    #[must_use]
    pub const fn new(
        rater: RaterId,
        product: ProductId,
        time: Timestamp,
        value: RatingValue,
    ) -> Self {
        Rating {
            rater,
            product,
            time,
            value,
        }
    }

    /// Returns the rater who submitted this rating.
    #[must_use]
    pub const fn rater(&self) -> RaterId {
        self.rater
    }

    /// Returns the rated product.
    #[must_use]
    pub const fn product(&self) -> ProductId {
        self.product
    }

    /// Returns the submission time.
    #[must_use]
    pub const fn time(&self) -> Timestamp {
        self.time
    }

    /// Returns the rating value.
    #[must_use]
    pub const fn value(&self) -> RatingValue {
        self.value
    }

    /// Returns a copy of this rating with a different value.
    ///
    /// Used by the correlation mapper (Procedure 3 of the paper), which
    /// permutes the *values* of a fixed set of rating *times*.
    #[must_use]
    pub fn with_value(mut self, value: RatingValue) -> Self {
        self.value = value;
        self
    }

    /// Returns a copy of this rating with a different time.
    #[must_use]
    pub fn with_time(mut self, time: Timestamp) -> Self {
        self.time = time;
        self
    }
}

impl fmt::Display for Rating {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rated {} as {} at {}",
            self.rater, self.product, self.value, self.time
        )
    }
}

/// Ground-truth provenance of a rating.
///
/// In the paper's Rating Challenge the organizers know exactly which ratings
/// were inserted by participants; this enum carries that knowledge through
/// the simulation so detection quality can be scored against truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RatingSource {
    /// An honest rating reflecting the product's true quality (plus noise).
    #[default]
    Fair,
    /// A collaborative unfair rating inserted by an attacker.
    Unfair,
}

impl RatingSource {
    /// Returns `true` for unfair ratings.
    #[must_use]
    pub const fn is_unfair(self) -> bool {
        matches!(self, RatingSource::Unfair)
    }
}

impl fmt::Display for RatingSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RatingSource::Fair => write!(f, "fair"),
            RatingSource::Unfair => write!(f, "unfair"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Rating {
        Rating::new(
            RaterId::new(1),
            ProductId::new(2),
            Timestamp::new(3.0).unwrap(),
            RatingValue::new(4.0).unwrap(),
        )
    }

    #[test]
    fn accessors() {
        let r = sample();
        assert_eq!(r.rater(), RaterId::new(1));
        assert_eq!(r.product(), ProductId::new(2));
        assert_eq!(r.time().as_days(), 3.0);
        assert_eq!(r.value().get(), 4.0);
    }

    #[test]
    fn with_value_replaces_only_value() {
        let r = sample().with_value(RatingValue::new(1.0).unwrap());
        assert_eq!(r.value().get(), 1.0);
        assert_eq!(r.rater(), RaterId::new(1));
        assert_eq!(r.time().as_days(), 3.0);
    }

    #[test]
    fn with_time_replaces_only_time() {
        let r = sample().with_time(Timestamp::new(9.0).unwrap());
        assert_eq!(r.time().as_days(), 9.0);
        assert_eq!(r.value().get(), 4.0);
    }

    #[test]
    fn source_flags() {
        assert!(!RatingSource::Fair.is_unfair());
        assert!(RatingSource::Unfair.is_unfair());
        assert_eq!(RatingSource::default(), RatingSource::Fair);
    }

    #[test]
    fn display_mentions_parts() {
        let s = sample().to_string();
        assert!(s.contains("rater#1"));
        assert!(s.contains("product#2"));
    }
}
