use std::error::Error;
use std::fmt;

/// Errors produced by `rrs-core` constructors and operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A rating value was outside the valid scale or not finite.
    InvalidValue {
        /// The offending raw value.
        value: f64,
    },
    /// A timestamp was not a finite number.
    InvalidTime {
        /// The offending raw value.
        value: f64,
    },
    /// A duration was negative or not finite.
    InvalidDuration {
        /// The offending raw length in days.
        days: f64,
    },
    /// A time window had `end < start`.
    InvalidWindow {
        /// Window start in days.
        start: f64,
        /// Window end in days.
        end: f64,
    },
    /// An operation that requires data was invoked on an empty collection.
    Empty {
        /// Human-readable description of what was empty.
        what: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidValue { value } => {
                write!(f, "rating value {value} is not on the valid scale")
            }
            CoreError::InvalidTime { value } => {
                write!(f, "timestamp {value} is not a finite number")
            }
            CoreError::InvalidDuration { days } => {
                write!(
                    f,
                    "duration of {days} days is not a finite non-negative number"
                )
            }
            CoreError::InvalidWindow { start, end } => {
                write!(f, "time window [{start}, {end}) has end before start")
            }
            CoreError::Empty { what } => write!(f, "{what} is empty"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            CoreError::InvalidValue { value: 9.0 },
            CoreError::InvalidTime { value: f64::NAN },
            CoreError::InvalidDuration { days: -1.0 },
            CoreError::InvalidWindow {
                start: 2.0,
                end: 1.0,
            },
            CoreError::Empty { what: "dataset" },
        ];
        for e in errs {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object_is_usable() {
        let e: Box<dyn Error + Send + Sync> = Box::new(CoreError::Empty { what: "x" });
        assert!(e.source().is_none());
    }
}
