//! The arrival-rate-change (ARC) detector and its H-ARC / L-ARC variants
//! (paper Section IV-C).
//!
//! Daily rating counts `y(n)` are modeled as Poisson; a GLRT over a
//! sliding `2D`-day window produces the ARC curve. Peaks cut the day axis
//! into segments, and a segment whose arrival rate *increased* over its
//! predecessor by more than a threshold is ARC-suspicious.
//!
//! Practical rating data rarely shows the full-stream rate change the
//! plain detector wants, so the paper adds H-ARC (count only ratings above
//! `threshold_a`) and L-ARC (below `threshold_b`): an unfair-rating burst
//! concentrates in one value band even when the total arrival rate barely
//! moves.

use crate::suspicion::{SuspicionKind, SuspiciousInterval};
use rrs_core::stream::split_at_peaks;
use rrs_core::{TimeWindow, TimelineView, Timestamp};
use rrs_signal::curve::{Curve, CurvePoint, Peak, UShape};
use rrs_signal::glrt::{arrival_rate_glrt, arrival_rate_glrt_from_sums};
use std::ops::Range;

/// Which value band the detector counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArcVariant {
    /// Count every rating (plain ARC).
    All,
    /// Count ratings with value above `threshold_a` (H-ARC).
    High,
    /// Count ratings with value below `threshold_b` (L-ARC).
    Low,
}

impl ArcVariant {
    /// The suspicion kind this variant reports.
    #[must_use]
    pub const fn kind(self) -> SuspicionKind {
        match self {
            // Plain ARC reports as "high" — an overall rate surge is the
            // classic ballot-stuffing signature.
            ArcVariant::All | ArcVariant::High => SuspicionKind::HighArrivalRate,
            ArcVariant::Low => SuspicionKind::LowArrivalRate,
        }
    }
}

/// Configuration of the ARC detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArcConfig {
    /// Half-window `D` in days (paper: 30-day window, `D = 15`).
    pub half_window_days: usize,
    /// Minimum days per half at the stream edges.
    pub min_half_days: usize,
    /// Decision threshold on the GLRT statistic of Eq. 5.
    pub glrt_threshold: f64,
    /// Minimum day separation between retained peaks.
    pub peak_separation: usize,
    /// Valley-to-peak ratio below which two peaks frame a U-shape.
    pub valley_ratio: f64,
    /// A segment is suspicious when its rate exceeds the previous
    /// segment's by more than this many ratings/day.
    pub rate_increase_threshold: f64,
    /// Scale-aware guard: the increase must also exceed this many
    /// standard deviations of the *difference* between the segment-rate
    /// estimate and the baseline estimate
    /// (`√(base/segment_days + base/baseline_days)` under the Poisson
    /// model), so that ordinary sampling noise on busy streams — or a
    /// baseline that was itself estimated from a short segment — never
    /// flags.
    pub rate_noise_factor: f64,
}

impl Default for ArcConfig {
    fn default() -> Self {
        // The GLRT threshold corresponds to 2 ln Λ ≈ 2·(2D)·0.05 = 3 at
        // the default D = 15 — deliberately permissive (χ²₁ p ≈ 0.08) so
        // that even a diluted low-band drip (~0.3 extra ratings/day on a
        // near-zero base) raises peaks. False peaks merely split the day
        // axis; the segment-flag rule (rate increase above the
        // threshold) and the two-path integration reject the noise.
        ArcConfig {
            half_window_days: 15,
            min_half_days: 4,
            glrt_threshold: 0.05,
            peak_separation: 6,
            valley_ratio: 0.5,
            rate_increase_threshold: 0.25,
            rate_noise_factor: 4.0,
        }
    }
}

/// One day-axis segment between ARC peaks, with its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcSegment {
    /// Day-index range of the segment (relative to the horizon start).
    pub day_range: Range<usize>,
    /// Time window covered by the segment.
    pub window: TimeWindow,
    /// Mean arrival rate over the segment (ratings/day).
    pub rate: f64,
    /// Whether the segment was flagged ARC-suspicious.
    pub flagged: bool,
}

/// The full output of an ARC-family detector on one product.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcOutcome {
    /// Which variant produced this outcome.
    pub variant: ArcVariant,
    /// The ARC curve (one sample per day index tested).
    pub curve: Curve,
    /// Retained peaks.
    pub peaks: Vec<Peak>,
    /// U-shapes (peak pairs framing a valley).
    pub u_shapes: Vec<UShape>,
    /// Per-segment verdicts.
    pub segments: Vec<ArcSegment>,
    /// Flagged segments as suspicious intervals.
    pub suspicious: Vec<SuspiciousInterval>,
}

impl ArcOutcome {
    pub(crate) fn empty(variant: ArcVariant) -> Self {
        ArcOutcome {
            variant,
            curve: Curve::default(),
            peaks: Vec::new(),
            u_shapes: Vec::new(),
            segments: Vec::new(),
            suspicious: Vec::new(),
        }
    }

    /// Returns `true` if any segment was flagged.
    #[must_use]
    pub fn is_suspicious(&self) -> bool {
        !self.suspicious.is_empty()
    }

    /// Returns `true` if the detector saw a rate change at all (any peak).
    ///
    /// The integration logic issues an H-ARC/L-ARC *alarm* when a rate
    /// change exists but no U-shape frames it (paper Fig. 1, path 2).
    #[must_use]
    pub fn has_alarm(&self) -> bool {
        !self.peaks.is_empty()
    }
}

/// Computes the ARC curve point at day index `k`, with the window halves
/// clipped to the series edges. Returns `None` when the clipped half
/// `w = min(D, k, n − k)` falls below `min_half_days` or the GLRT is
/// undefined (both halves all-zero).
///
/// The point is *final* once `k + min(D, k)` days are complete: every
/// later arrival lands in a strictly later day bin, so both count slices
/// are frozen (`min(D, k) ≤ n − k` already holds for such `k`, hence the
/// edge clip no longer binds). The online path caches settled points on
/// exactly this argument.
pub(crate) fn curve_point(
    counts: &[u32],
    day0: Timestamp,
    k: usize,
    config: &ArcConfig,
) -> Option<CurvePoint> {
    let n = counts.len();
    let w = config.half_window_days.min(k).min(n - k);
    if w < config.min_half_days {
        return None;
    }
    arrival_rate_glrt(&counts[k - w..k], &counts[k..k + w]).map(|stat| CurvePoint {
        index: k,
        time: day0.as_days() + k as f64,
        value: stat,
    })
}

/// [`curve_point`] evaluated in O(1) from a count prefix-sum table
/// (`prefix[i] = counts[..i].sum()`, so `prefix.len() == counts.len() + 1`).
///
/// Bit-identical to [`curve_point`]: the window sums are sums of integer
/// counts, exact in `f64` below 2⁵³, so the prefix-sum differences equal
/// the slice sums bit for bit (see
/// [`rrs_signal::glrt::arrival_rate_glrt_from_sums`]).
pub(crate) fn curve_point_from_prefix(
    prefix: &[u64],
    day0: Timestamp,
    k: usize,
    config: &ArcConfig,
) -> Option<CurvePoint> {
    let n = prefix.len() - 1;
    let w = config.half_window_days.min(k).min(n - k);
    if w < config.min_half_days {
        return None;
    }
    let sum1 = (prefix[k] - prefix[k - w]) as f64;
    let sum2 = (prefix[k + w] - prefix[k]) as f64;
    arrival_rate_glrt_from_sums(w as f64, sum1, w as f64, sum2).map(|stat| CurvePoint {
        index: k,
        time: day0.as_days() + k as f64,
        value: stat,
    })
}

/// Runs an ARC-family detector from a pre-computed daily count series.
///
/// `day0` is the timestamp of day index 0.
#[must_use]
pub fn detect_counts(
    counts: &[u32],
    day0: Timestamp,
    variant: ArcVariant,
    config: &ArcConfig,
) -> ArcOutcome {
    let n = counts.len();
    if n < 2 * config.min_half_days {
        return ArcOutcome::empty(variant);
    }

    let signal_span = rrs_obs::trace::span("signal.arc");
    let mut points = Vec::with_capacity(n);
    for k in config.min_half_days..=(n - config.min_half_days) {
        if let Some(p) = curve_point(counts, day0, k, config) {
            points.push(p);
        }
    }
    let curve = Curve::new(points);
    let peaks = curve.find_peaks(config.glrt_threshold, config.peak_separation);
    let u_shapes = curve.u_shapes_between(&peaks, config.valley_ratio);
    drop(signal_span);
    judge_counts(counts, day0, variant, config, curve, peaks, u_shapes)
}

/// Segments the day axis at the peaks and judges each segment against
/// the ratcheting baseline — shared verbatim by the batch and online
/// paths so their verdicts are bit-identical.
#[allow(clippy::too_many_arguments)]
pub(crate) fn judge_counts(
    counts: &[u32],
    day0: Timestamp,
    variant: ArcVariant,
    config: &ArcConfig,
    curve: Curve,
    peaks: Vec<Peak>,
    u_shapes: Vec<UShape>,
) -> ArcOutcome {
    let n = counts.len();
    let _detect_span = rrs_obs::trace::span("detect.arc");

    // Segment the day axis at the peaks. Adjacent segments whose rates
    // differ by less than the decision threshold are merged first — a
    // spurious peak inside a stationary burst would otherwise split the
    // burst into pieces that each fail the "higher than the previous
    // segment" rule.
    let peak_days = Curve::peak_stream_indices(&peaks);
    let mut ranges: Vec<(Range<usize>, f64)> = split_at_peaks(n, &peak_days)
        .into_iter()
        .map(|r| {
            let total: u32 = counts[r.clone()].iter().sum();
            let rate = f64::from(total) / r.len() as f64;
            (r, rate)
        })
        .collect();
    let mut i = 0;
    while i + 1 < ranges.len() {
        if (ranges[i].1 - ranges[i + 1].1).abs() < config.rate_increase_threshold {
            let (next, _) = ranges.remove(i + 1);
            let merged = ranges[i].0.start..next.end;
            let total: u32 = counts[merged.clone()].iter().sum();
            ranges[i].1 = f64::from(total) / merged.len() as f64;
            ranges[i].0 = merged;
            // Re-examine the same index: the merged segment may now also
            // be within threshold of its new right neighbor.
        } else {
            i += 1;
        }
    }

    // Flag segments against a carried *baseline*: the rate of the last
    // segment judged normal. Comparing only against the immediately
    // previous segment (the paper's literal wording) lets a long burst
    // that got split by a spurious interior peak launder its second half
    // — the second piece is "not higher than the previous segment"
    // because the previous segment is itself part of the attack.
    let mut segments: Vec<ArcSegment> = Vec::new();
    let mut suspicious = Vec::new();
    // Baseline rate plus the day-length of the segment that set it: the
    // baseline is itself a noisy Poisson estimate, and a short quiet
    // opening segment would otherwise anchor an over-tight baseline whose
    // estimation error the guard never sees.
    let mut baseline: Option<(f64, usize)> = None;
    for (day_range, rate) in ranges {
        let flagged = baseline.is_some_and(|(base, base_days)| {
            let var = base / day_range.len().max(1) as f64 + base / base_days.max(1) as f64;
            rate > base
                && rate - base
                    > config
                        .rate_increase_threshold
                        .max(config.rate_noise_factor * var.sqrt())
        });
        let window = TimeWindow::ordered(
            Timestamp::saturating(day0.as_days() + day_range.start as f64),
            Timestamp::saturating(day0.as_days() + day_range.end as f64),
        );
        if flagged {
            suspicious.push(SuspiciousInterval::new(window, variant.kind(), rate));
        } else {
            // The baseline only ratchets *down*: a gradually ramping
            // attack would otherwise walk the baseline up with it
            // segment by segment and never trip the threshold.
            baseline = Some(match baseline {
                Some((b, days)) if b <= rate => (b, days),
                _ => (rate, day_range.len()),
            });
        }
        segments.push(ArcSegment {
            day_range,
            window,
            rate,
            flagged,
        });
    }

    ArcOutcome {
        variant,
        curve,
        peaks,
        u_shapes,
        segments,
        suspicious,
    }
}

/// Runs an ARC-family detector over one product's timeline.
///
/// The value thresholds follow the paper: `threshold_a = 0.5·m` and
/// `threshold_b = 0.5·m + 0.5` with `m` the mean rating value of the
/// timeline (the paper computes `m` per window; the difference is
/// negligible for streams whose fair mean is stable, and the stream-level
/// mean is far more robust when an attack is in progress).
#[must_use]
pub fn detect<'a>(
    timeline: impl Into<TimelineView<'a>>,
    horizon: TimeWindow,
    variant: ArcVariant,
    config: &ArcConfig,
) -> ArcOutcome {
    let timeline = timeline.into();
    let m = robust_level(timeline);
    let counts = match variant {
        ArcVariant::All => timeline.daily_counts(horizon),
        ArcVariant::High => {
            let threshold_a = 0.5 * m;
            timeline.daily_counts_filtered(horizon, |v| v > threshold_a)
        }
        ArcVariant::Low => {
            let threshold_b = 0.5 * m + 0.5;
            timeline.daily_counts_filtered(horizon, |v| v < threshold_b)
        }
    };
    detect_counts(&counts, horizon.start(), variant, config)
}

/// Returns the paper's value thresholds `(threshold_a, threshold_b)` for a
/// timeline: `0.5·m` and `0.5·m + 0.5`.
///
/// `m` is the *median* rating value rather than the paper's mean: the
/// mean of an attacked stream is dragged toward the unfair ratings, which
/// would shift the band thresholds in the attacker's favor; the median
/// holds its level while unfair ratings are a minority.
#[must_use]
pub fn value_thresholds<'a>(timeline: impl Into<TimelineView<'a>>) -> (f64, f64) {
    let m = robust_level(timeline.into());
    (0.5 * m, 0.5 * m + 0.5)
}

/// The robust central level `m` of a timeline's rating values.
pub(crate) fn robust_level(timeline: TimelineView<'_>) -> f64 {
    rrs_signal::stats::median(&timeline.values()).unwrap_or(2.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::rng::Xoshiro256pp;
    use rrs_core::{prop_assert, props};
    use rrs_signal::sampling::poisson;

    fn ts(d: f64) -> Timestamp {
        Timestamp::new(d).unwrap()
    }

    fn poisson_counts(days: usize, lambda: f64, seed: u64) -> Vec<u32> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..days)
            .map(|_| poisson(&mut rng, lambda) as u32)
            .collect()
    }

    #[test]
    fn stationary_counts_not_flagged() {
        let counts = poisson_counts(120, 4.0, 1);
        let out = detect_counts(&counts, ts(0.0), ArcVariant::All, &ArcConfig::default());
        assert!(!out.is_suspicious(), "flagged: {:?}", out.suspicious);
    }

    #[test]
    fn rate_burst_is_flagged() {
        let mut counts = poisson_counts(120, 4.0, 2);
        for c in counts.iter_mut().skip(50).take(15) {
            *c += 8;
        }
        let out = detect_counts(&counts, ts(0.0), ArcVariant::All, &ArcConfig::default());
        assert!(out.is_suspicious(), "burst not flagged");
        let burst = TimeWindow::new(ts(50.0), ts(65.0)).unwrap();
        assert!(out.suspicious.iter().any(|s| s.overlaps(burst)));
    }

    #[test]
    fn burst_produces_u_shape() {
        let mut counts = poisson_counts(120, 4.0, 3);
        for c in counts.iter_mut().skip(50).take(20) {
            *c += 10;
        }
        let out = detect_counts(&counts, ts(0.0), ArcVariant::All, &ArcConfig::default());
        assert!(
            !out.u_shapes.is_empty(),
            "no U-shape; peaks at {:?}",
            out.peaks.iter().map(|p| p.point.index).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gradually_ramping_rate_cannot_walk_the_baseline_up() {
        // Rate climbs 2 -> 10 in four gentle steps: each step is small,
        // but the ratcheting baseline keeps comparing against the
        // original level, so the later segments are still flagged.
        let mut counts = vec![2u32; 40];
        counts.extend(vec![4u32; 20]);
        counts.extend(vec![6u32; 20]);
        counts.extend(vec![8u32; 20]);
        counts.extend(vec![10u32; 20]);
        let out = detect_counts(&counts, ts(0.0), ArcVariant::All, &ArcConfig::default());
        assert!(
            out.is_suspicious(),
            "ramp never flagged: {:?}",
            out.segments
                .iter()
                .map(|s| (s.rate, s.flagged))
                .collect::<Vec<_>>()
        );
        // The flagged mass is in the later (high-rate) part.
        assert!(out
            .suspicious
            .iter()
            .any(|s| s.window.start().as_days() >= 40.0));
    }

    #[test]
    fn too_short_series_is_silent() {
        let out = detect_counts(&[1, 2], ts(0.0), ArcVariant::All, &ArcConfig::default());
        assert!(out.curve.is_empty());
        assert!(!out.has_alarm());
    }

    #[test]
    fn variant_kinds() {
        assert_eq!(ArcVariant::High.kind(), SuspicionKind::HighArrivalRate);
        assert_eq!(ArcVariant::Low.kind(), SuspicionKind::LowArrivalRate);
        assert_eq!(ArcVariant::All.kind(), SuspicionKind::HighArrivalRate);
    }

    #[test]
    fn rate_decrease_is_not_flagged() {
        // Start high, drop: the paper only flags *increases* (unfair
        // ratings add traffic; they do not remove it).
        let mut counts = vec![10u32; 60];
        counts.extend(vec![3u32; 60]);
        let out = detect_counts(&counts, ts(0.0), ArcVariant::All, &ArcConfig::default());
        assert!(
            !out.is_suspicious(),
            "decrease wrongly flagged: {:?}",
            out.suspicious
        );
    }

    #[test]
    fn low_variant_counts_only_low_ratings() {
        use rrs_core::{ProductId, RaterId, Rating, RatingDataset, RatingSource, RatingValue};
        let mut d = RatingDataset::new();
        let mut rater = 0u32;
        // 60 days of fair 4-star ratings, then a burst of 1-star ratings.
        for day in 0..60 {
            for _ in 0..3 {
                d.insert(
                    Rating::new(
                        RaterId::new(rater),
                        ProductId::new(0),
                        ts(f64::from(day)),
                        RatingValue::new(4.0).unwrap(),
                    ),
                    RatingSource::Fair,
                );
                rater += 1;
            }
        }
        for day in 30..42 {
            for _ in 0..5 {
                d.insert(
                    Rating::new(
                        RaterId::new(rater),
                        ProductId::new(0),
                        ts(f64::from(day) + 0.5),
                        RatingValue::new(1.0).unwrap(),
                    ),
                    RatingSource::Unfair,
                );
                rater += 1;
            }
        }
        let tl = d.product(ProductId::new(0)).unwrap();
        let horizon = TimeWindow::new(ts(0.0), ts(60.0)).unwrap();
        let low = detect(tl, horizon, ArcVariant::Low, &ArcConfig::default());
        assert!(low.is_suspicious(), "L-ARC missed the low-value burst");
        // The high-band counts never changed, so H-ARC stays quiet.
        let high = detect(tl, horizon, ArcVariant::High, &ArcConfig::default());
        assert!(!high.is_suspicious(), "H-ARC false alarm");
    }

    props! {
        #[test]
        fn prefix_curve_point_is_bitwise_identical(
            days in 2usize..80,
            lambda in 0.5f64..12.0,
            seed in 0u64..1_000_000,
        ) {
            let counts = poisson_counts(days, lambda, seed);
            let mut prefix = vec![0u64; counts.len() + 1];
            for (i, &c) in counts.iter().enumerate() {
                prefix[i + 1] = prefix[i] + u64::from(c);
            }
            let config = ArcConfig::default();
            for k in 0..=counts.len() {
                let slow = curve_point(&counts, ts(0.0), k, &config);
                let fast = curve_point_from_prefix(&prefix, ts(0.0), k, &config);
                match (slow, fast) {
                    (None, None) => {}
                    (Some(s), Some(f)) => {
                        prop_assert!(s.index == f.index);
                        prop_assert!(s.time.to_bits() == f.time.to_bits());
                        prop_assert!(
                            s.value.to_bits() == f.value.to_bits(),
                            "k={k}: {} vs {}", f.value, s.value
                        );
                    }
                    (s, f) => prop_assert!(false, "k={k}: {s:?} vs {f:?}"),
                }
            }
        }
    }

    #[test]
    fn thresholds_follow_paper_formulas() {
        use rrs_core::{ProductId, RaterId, Rating, RatingDataset, RatingSource, RatingValue};
        let mut d = RatingDataset::new();
        d.insert(
            Rating::new(
                RaterId::new(0),
                ProductId::new(0),
                ts(0.0),
                RatingValue::new(4.0).unwrap(),
            ),
            RatingSource::Fair,
        );
        let tl = d.product(ProductId::new(0)).unwrap();
        let (a, b) = value_thresholds(tl);
        assert_eq!(a, 2.0);
        assert_eq!(b, 2.5);
    }
}
