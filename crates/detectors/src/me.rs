//! The signal-model-change / model-error (ME) detector (paper Section
//! IV-E, after Yang et al. 2007).
//!
//! Ratings in a sliding window are fitted to an AR model by the covariance
//! method. Honest ratings are close to white noise around the product
//! quality — the model predicts poorly and the (variance-normalized)
//! model error stays near 1. Collaborative unfair ratings introduce
//! structure the model locks onto, and the error drops. Windows whose
//! error falls below a threshold are ME-suspicious.

use crate::suspicion::{SuspicionKind, SuspiciousInterval};
use rrs_core::{TimeWindow, TimelineView, Timestamp};
use rrs_signal::ar::fit_ar;
use rrs_signal::curve::{Curve, CurvePoint};

/// Configuration of the ME detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeConfig {
    /// Window length in ratings (paper: 40).
    pub window_ratings: usize,
    /// Step between window starts, in ratings.
    pub step: usize,
    /// AR model order.
    pub order: usize,
    /// Windows with normalized model error at or below this are
    /// suspicious.
    pub threshold: f64,
}

impl Default for MeConfig {
    fn default() -> Self {
        MeConfig {
            window_ratings: 40,
            step: 5,
            order: 4,
            threshold: 0.55,
        }
    }
}

/// The output of the ME detector on one product.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeOutcome {
    /// The model-error curve (one sample per evaluated window center).
    pub curve: Curve,
    /// Maximal runs of below-threshold windows, as time intervals.
    pub suspicious: Vec<SuspiciousInterval>,
}

impl MeOutcome {
    /// Returns `true` if any window fell below the threshold.
    #[must_use]
    pub fn is_suspicious(&self) -> bool {
        !self.suspicious.is_empty()
    }
}

/// Computes the ME curve point for the window starting at `start`, or
/// `None` when the AR fit fails (requires
/// `start + window_ratings ≤ values.len()`).
///
/// The point only reads the frozen prefix `values[start..start + w]` and
/// `times[center]`, so it is final as soon as the window fits — the
/// online path appends each new window's point exactly once.
pub(crate) fn window_point(
    values: &[f64],
    times: &[f64],
    start: usize,
    config: &MeConfig,
) -> Option<CurvePoint> {
    let center = start + config.window_ratings / 2;
    fit_ar(&values[start..start + config.window_ratings], config.order)
        .ok()
        .map(|model| CurvePoint {
            index: center,
            time: times[center],
            value: model.normalized_error(),
        })
}

/// Merges consecutive below-threshold curve samples into suspicious
/// intervals covering the full windows involved — shared verbatim by the
/// batch and online paths.
pub(crate) fn suspicious_runs(
    curve: &Curve,
    times: &[f64],
    config: &MeConfig,
) -> Vec<SuspiciousInterval> {
    let w = config.window_ratings;
    let mut suspicious = Vec::new();
    let pts = curve.points();
    let mut run_start: Option<usize> = None;
    for (i, p) in pts.iter().enumerate() {
        let below = p.value <= config.threshold;
        match (below, run_start) {
            (true, None) => run_start = Some(i),
            (false, Some(s)) => {
                suspicious.push(run_interval(pts, s, i - 1, times, w));
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = run_start {
        suspicious.push(run_interval(pts, s, pts.len() - 1, times, w));
    }
    suspicious
}

/// Runs the ME detector over one product's timeline.
#[must_use]
pub fn detect<'a>(timeline: impl Into<TimelineView<'a>>, config: &MeConfig) -> MeOutcome {
    let timeline = timeline.into();
    let n = timeline.len();
    let w = config.window_ratings;
    if n < w || w == 0 || config.order == 0 {
        return MeOutcome::default();
    }
    // Contiguous column walks on the columnar engine.
    let values: Vec<f64> = timeline.values();
    let times: Vec<f64> = timeline.times().iter().map(|t| t.as_days()).collect();

    let signal_span = rrs_obs::trace::span("signal.me");
    let step = config.step.max(1);
    let mut points = Vec::new();
    let mut start = 0usize;
    while start + w <= n {
        if let Some(p) = window_point(&values, &times, start, config) {
            points.push(p);
        }
        start += step;
    }
    let curve = Curve::new(points);
    drop(signal_span);
    let _detect_span = rrs_obs::trace::span("detect.me");

    let suspicious = suspicious_runs(&curve, &times, config);
    MeOutcome { curve, suspicious }
}

fn run_interval(
    pts: &[CurvePoint],
    first: usize,
    last: usize,
    times: &[f64],
    window: usize,
) -> SuspiciousInterval {
    let n = times.len();
    let start_idx = pts[first].index.saturating_sub(window / 2);
    let end_idx = (pts[last].index + window / 2).min(n - 1);
    // Strength: how far below threshold the error dropped (lower error =
    // stronger signal), reported as 1 − min error.
    let strength = 1.0
        - pts[first..=last]
            .iter()
            .map(|p| p.value)
            .fold(f64::INFINITY, f64::min);
    let window = TimeWindow::ordered(
        Timestamp::saturating(times[start_idx]),
        Timestamp::saturating(times[end_idx] + 1e-9),
    );
    SuspiciousInterval::new(window, SuspicionKind::ModelError, strength)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::rng::RrsRng;
    use rrs_core::rng::Xoshiro256pp;
    use rrs_core::{ProductId, RaterId, Rating, RatingDataset, RatingSource, RatingValue};

    fn dataset(values: impl Iterator<Item = (f64, f64)>) -> RatingDataset {
        let mut d = RatingDataset::new();
        for (i, (t, v)) in values.enumerate() {
            d.insert(
                Rating::new(
                    RaterId::new(i as u32),
                    ProductId::new(0),
                    Timestamp::new(t).unwrap(),
                    RatingValue::new_clamped(v),
                ),
                RatingSource::Fair,
            );
        }
        d
    }

    #[test]
    fn fair_noise_is_quiet() {
        let mut rng = Xoshiro256pp::seed_from_u64(10);
        let d = dataset((0..300).map(|i| (f64::from(i) * 0.25, 4.0 + rng.gen_range(-0.8..0.8))));
        let out = detect(d.product(ProductId::new(0)).unwrap(), &MeConfig::default());
        assert!(!out.is_suspicious(), "{:?}", out.suspicious);
        assert!(!out.curve.is_empty());
    }

    #[test]
    fn constant_collusion_run_is_flagged() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        // Ratings 120..180 all exactly 1.2: perfectly predictable.
        let d = dataset((0..300).map(|i| {
            let v = if (120..180).contains(&i) {
                1.2
            } else {
                4.0 + rng.gen_range(-0.8..0.8)
            };
            (f64::from(i) * 0.25, v)
        }));
        let out = detect(d.product(ProductId::new(0)).unwrap(), &MeConfig::default());
        assert!(out.is_suspicious(), "constant run not flagged");
        let attack =
            TimeWindow::new(Timestamp::new(30.0).unwrap(), Timestamp::new(45.0).unwrap()).unwrap();
        assert!(out.suspicious.iter().any(|s| s.overlaps(attack)));
    }

    #[test]
    fn oscillating_collusion_is_flagged() {
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        // Deterministic alternating pattern: AR-predictable.
        let d = dataset((0..300).map(|i| {
            let v = if (120..180).contains(&i) {
                if i % 2 == 0 {
                    1.0
                } else {
                    2.0
                }
            } else {
                4.0 + rng.gen_range(-0.8..0.8)
            };
            (f64::from(i) * 0.25, v)
        }));
        let out = detect(d.product(ProductId::new(0)).unwrap(), &MeConfig::default());
        assert!(out.is_suspicious(), "oscillation not flagged");
    }

    #[test]
    fn short_stream_is_silent() {
        let d = dataset((0..10).map(|i| (f64::from(i), 4.0)));
        let out = detect(d.product(ProductId::new(0)).unwrap(), &MeConfig::default());
        assert!(out.curve.is_empty());
        assert!(!out.is_suspicious());
    }

    #[test]
    fn zero_order_is_silent() {
        let d = dataset((0..100).map(|i| (f64::from(i), 4.0)));
        let cfg = MeConfig {
            order: 0,
            ..MeConfig::default()
        };
        let out = detect(d.product(ProductId::new(0)).unwrap(), &cfg);
        assert!(out.curve.is_empty());
    }
}
