use rrs_core::TimeWindow;
use std::fmt;

/// Which analysis flagged an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum SuspicionKind {
    /// Mean-change segment verdict (Section IV-B.3).
    MeanChange,
    /// Arrival-rate-change segment verdict on high-valued ratings.
    HighArrivalRate,
    /// Arrival-rate-change segment verdict on low-valued ratings.
    LowArrivalRate,
    /// Histogram-change (bimodality) verdict.
    Histogram,
    /// AR-model-error verdict.
    ModelError,
}

impl fmt::Display for SuspicionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SuspicionKind::MeanChange => "mean change",
            SuspicionKind::HighArrivalRate => "high-rating arrival rate",
            SuspicionKind::LowArrivalRate => "low-rating arrival rate",
            SuspicionKind::Histogram => "histogram change",
            SuspicionKind::ModelError => "model error",
        };
        f.write_str(name)
    }
}

/// A time interval one of the detectors flagged as likely to contain
/// unfair ratings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuspiciousInterval {
    /// The flagged time interval.
    pub window: TimeWindow,
    /// Which detector flagged it.
    pub kind: SuspicionKind,
    /// Detector-specific strength of the verdict (larger = more
    /// suspicious); comparable only within one `kind`.
    pub strength: f64,
}

impl SuspiciousInterval {
    /// Creates an interval verdict.
    #[must_use]
    pub const fn new(window: TimeWindow, kind: SuspicionKind, strength: f64) -> Self {
        SuspiciousInterval {
            window,
            kind,
            strength,
        }
    }

    /// Returns `true` if this interval overlaps `other` in time.
    #[must_use]
    pub fn overlaps(&self, other: TimeWindow) -> bool {
        self.window.intersect(other).is_some()
    }
}

impl fmt::Display for SuspiciousInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} suspicious over {} (strength {:.3})",
            self.kind, self.window, self.strength
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::Timestamp;

    fn window(a: f64, b: f64) -> TimeWindow {
        TimeWindow::new(Timestamp::new(a).unwrap(), Timestamp::new(b).unwrap()).unwrap()
    }

    #[test]
    fn overlap_detection() {
        let s = SuspiciousInterval::new(window(10.0, 20.0), SuspicionKind::Histogram, 0.9);
        assert!(s.overlaps(window(15.0, 25.0)));
        assert!(!s.overlaps(window(20.0, 25.0)));
    }

    #[test]
    fn display_names_detector() {
        let s = SuspiciousInterval::new(window(0.0, 1.0), SuspicionKind::ModelError, 0.1);
        assert!(s.to_string().contains("model error"));
        assert!(SuspicionKind::MeanChange.to_string().contains("mean"));
        assert!(SuspicionKind::HighArrivalRate.to_string().contains("high"));
        assert!(SuspicionKind::LowArrivalRate.to_string().contains("low"));
        assert!(SuspicionKind::Histogram.to_string().contains("histogram"));
    }
}
