//! Joint detection of suspicious ratings (paper Section IV-F, Figure 1).
//!
//! Single detectors false-alarm too often because fair ratings are not
//! stationary, so verdicts are combined along two parallel paths:
//!
//! * **Path 1 — strong attacks.** When an MC-suspicious segment and an
//!   H-ARC (resp. L-ARC) suspicious segment coincide in time, the ratings
//!   above `threshold_a` (resp. below `threshold_b`) inside the overlap
//!   are marked suspicious.
//! * **Path 2 — subtler attacks.** When H-ARC (resp. L-ARC) sees a rate
//!   change that Path 1 did not consume — an *alarm* — the ME (resp. HC)
//!   detector adjudicates: if its own suspicious interval overlaps the
//!   alarmed segment, the high (resp. low) ratings in the overlap are
//!   marked.
//!
//! Both paths run on every product, since a product may suffer several
//! attacks.

use crate::arc::{self, ArcOutcome, ArcVariant};
use crate::config::DetectorConfig;
use crate::hc::{self, HcOutcome};
use crate::mc::{self, McOutcome};
use crate::me::{self, MeOutcome};
use crate::suspicion::SuspiciousInterval;
use rrs_core::{DatasetView, ProductId, RaterId, RatingId, TimeWindow, TimelineView};
use std::collections::BTreeSet;

// Metric names, declared as constants per the `metric-name` lint rule.
const METRIC_PATH1_HITS: &str = "detect.path1_hits";
const METRIC_PATH2_HITS: &str = "detect.path2_hits";
const METRIC_MARKED_RATINGS: &str = "detect.marked_ratings";
const METRIC_FIRED_MC: &str = "detect.fired.mc";
const METRIC_FIRED_HARC: &str = "detect.fired.harc";
const METRIC_FIRED_LARC: &str = "detect.fired.larc";
const METRIC_FIRED_HC: &str = "detect.fired.hc";
const METRIC_FIRED_ME: &str = "detect.fired.me";
const METRIC_MARKED_PER_PRODUCT: &str = "detect.marked_per_product";

/// Which value band a path hit marked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Band {
    /// Ratings above `threshold_a`.
    High,
    /// Ratings below `threshold_b`.
    Low,
}

/// One firing of a detection path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathHit {
    /// 1 for the strong-attack path, 2 for the alarm path.
    pub path: u8,
    /// The time overlap within which ratings were marked.
    pub window: TimeWindow,
    /// Which value band was marked.
    pub band: Band,
    /// How many ratings the hit marked.
    pub marked: usize,
}

/// Combined detection output for one product.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionResult {
    /// All ratings marked suspicious by either path.
    pub suspicious: BTreeSet<RatingId>,
    /// Mean-change outcome.
    pub mc: McOutcome,
    /// H-ARC outcome.
    pub harc: ArcOutcome,
    /// L-ARC outcome.
    pub larc: ArcOutcome,
    /// Histogram-change outcome.
    pub hc: HcOutcome,
    /// Model-error outcome.
    pub me: MeOutcome,
    /// Path firings, in detection order.
    pub hits: Vec<PathHit>,
}

/// One detector's contribution to a decision, reduced to a single
/// comparable statistic: the raw value the detector thresholded, the
/// threshold it used, and whether it fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorVerdictSummary {
    /// Detector name: `"mc"`, `"h-arc"`, `"l-arc"`, `"hc"`, or `"me"`.
    pub name: &'static str,
    /// The detector's headline statistic for this product.
    pub statistic: f64,
    /// The threshold the statistic was judged against.
    pub threshold: f64,
    /// Whether the detector reported any suspicious interval.
    pub fired: bool,
}

impl DetectionResult {
    /// Returns every suspicious interval reported by any detector.
    #[must_use]
    pub fn all_intervals(&self) -> Vec<SuspiciousInterval> {
        let mut out = Vec::new();
        out.extend(self.mc.suspicious.iter().copied());
        out.extend(self.harc.suspicious.iter().copied());
        out.extend(self.larc.suspicious.iter().copied());
        out.extend(self.hc.suspicious.iter().copied());
        out.extend(self.me.suspicious.iter().copied());
        out
    }

    /// Reduces each detector's outcome to one [`DetectorVerdictSummary`],
    /// in the fixed order mc, h-arc, l-arc, hc, me.
    ///
    /// Headline statistics: MC reports its largest segment mean
    /// deviation; the ARC variants report the largest rate increase
    /// between consecutive segments; HC reports its peak histogram
    /// ratio; ME reports its *minimum* model error (it fires on values
    /// at or below the threshold, so 1.0 is the neutral value for an
    /// empty curve).
    #[must_use]
    pub fn verdict_summaries(&self, config: &DetectorConfig) -> Vec<DetectorVerdictSummary> {
        let mc_stat = self
            .mc
            .segments
            .iter()
            .map(|s| s.mean_deviation)
            .fold(0.0f64, f64::max);
        let arc_stat = |out: &ArcOutcome| {
            out.segments
                .windows(2)
                .map(|pair| pair[1].rate - pair[0].rate)
                .fold(0.0f64, f64::max)
        };
        let hc_stat = self
            .hc
            .curve
            .points()
            .iter()
            .map(|p| p.value)
            .fold(0.0f64, f64::max);
        let me_stat = self
            .me
            .curve
            .points()
            .iter()
            .map(|p| p.value)
            .fold(1.0f64, f64::min);
        vec![
            DetectorVerdictSummary {
                name: "mc",
                statistic: mc_stat,
                threshold: config.mc.threshold1,
                fired: !self.mc.suspicious.is_empty(),
            },
            DetectorVerdictSummary {
                name: "h-arc",
                statistic: arc_stat(&self.harc),
                threshold: config.arc.rate_increase_threshold,
                fired: !self.harc.suspicious.is_empty(),
            },
            DetectorVerdictSummary {
                name: "l-arc",
                statistic: arc_stat(&self.larc),
                threshold: config.arc.rate_increase_threshold,
                fired: !self.larc.suspicious.is_empty(),
            },
            DetectorVerdictSummary {
                name: "hc",
                statistic: hc_stat,
                threshold: config.hc.threshold,
                fired: !self.hc.suspicious.is_empty(),
            },
            DetectorVerdictSummary {
                name: "me",
                statistic: me_stat,
                threshold: config.me.threshold,
                fired: !self.me.suspicious.is_empty(),
            },
        ]
    }
}

/// The joint detector of the P-scheme: four detectors plus the Fig. 1
/// two-path integration.
#[derive(Debug, Clone, Default)]
pub struct JointDetector {
    config: DetectorConfig,
}

impl JointDetector {
    /// Creates a joint detector with the given configuration.
    #[must_use]
    pub fn new(config: DetectorConfig) -> Self {
        JointDetector { config }
    }

    /// Returns the configuration.
    #[must_use]
    pub const fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// Runs joint detection over one product (accepts `&ProductTimeline`
    /// or a borrowed [`TimelineView`]).
    ///
    /// `horizon` bounds the daily-count axis for the arrival-rate
    /// detectors; `trust` supplies current rater trust (use `|_| 0.5`
    /// before any trust has been established).
    pub fn detect_product<'a, F>(
        &self,
        timeline: impl Into<TimelineView<'a>>,
        horizon: TimeWindow,
        trust: F,
    ) -> DetectionResult
    where
        F: Fn(RaterId) -> f64,
    {
        let timeline = timeline.into();
        let enabled = self.config.enabled;
        let mc_out = if enabled.mc {
            mc::detect(timeline, &self.config.mc, &trust)
        } else {
            McOutcome::default()
        };
        let (harc_out, larc_out) = if enabled.arc {
            (
                arc::detect(timeline, horizon, ArcVariant::High, &self.config.arc),
                arc::detect(timeline, horizon, ArcVariant::Low, &self.config.arc),
            )
        } else {
            (arc_empty(ArcVariant::High), arc_empty(ArcVariant::Low))
        };
        let hc_out = if enabled.hc {
            hc::detect(timeline, &self.config.hc)
        } else {
            HcOutcome::default()
        };
        let me_out = if enabled.me {
            me::detect(timeline, &self.config.me)
        } else {
            MeOutcome::default()
        };

        let stream_median = arc::robust_level(timeline);
        integrate_outcomes(
            &self.config,
            timeline,
            mc_out,
            harc_out,
            larc_out,
            hc_out,
            me_out,
            stream_median,
            &trust,
        )
    }

    /// Runs joint detection over every product of a dataset (accepts
    /// `&RatingDataset` or a borrowed [`DatasetView`]) and returns the
    /// union of suspicious marks plus the per-product results.
    ///
    /// Products are independent, so they are detected in parallel via
    /// [`rrs_core::par::par_map`]; results come back in product order and
    /// the mark union is a `BTreeSet`, so the output is identical at any
    /// thread count.
    pub fn detect_all<'a, D, F>(
        &self,
        dataset: D,
        horizon: TimeWindow,
        trust: F,
    ) -> (BTreeSet<RatingId>, Vec<(ProductId, DetectionResult)>)
    where
        D: Into<DatasetView<'a>>,
        F: Fn(RaterId) -> f64 + Sync,
    {
        let view = dataset.into();
        let trust = &trust;
        let per_product = rrs_core::par::par_map(view.products(), |_, &(pid, timeline)| {
            (pid, self.detect_product(timeline, horizon, trust))
        });
        let mut all = BTreeSet::new();
        for (_, result) in &per_product {
            all.extend(result.suspicious.iter().copied());
        }
        (all, per_product)
    }
}

/// The two-path integration of Fig. 1 over pre-computed detector
/// outcomes — shared verbatim by the batch and online paths so their
/// marks are bit-identical.
///
/// `stream_median` is the robust central level `m` of the timeline's
/// values; the paper's band thresholds derive from it as
/// `threshold_a = 0.5·m` and `threshold_b = 0.5·m + 0.5` (exactly
/// [`arc::value_thresholds`]), and the Path-2 mean-deviation adjudicator
/// uses it as the reference level.
#[allow(clippy::too_many_arguments)]
pub(crate) fn integrate_outcomes<F>(
    config: &DetectorConfig,
    timeline: TimelineView<'_>,
    mc_out: McOutcome,
    harc_out: ArcOutcome,
    larc_out: ArcOutcome,
    hc_out: HcOutcome,
    me_out: MeOutcome,
    stream_median: f64,
    trust: &F,
) -> DetectionResult
where
    F: Fn(RaterId) -> f64,
{
    let _integrate_span = rrs_obs::trace::span("detect.integrate");
    let threshold_a = 0.5 * stream_median;
    let threshold_b = 0.5 * stream_median + 0.5;
    let mut suspicious = BTreeSet::new();
    let mut hits = Vec::new();

    // Path 1: strong attacks. Candidate intervals on the MC side are
    // its U-shapes (the paper's wording) plus its flagged segments
    // (Section IV-B.3); on the ARC side likewise. A coincidence marks
    // the band inside the overlap.
    let mc_candidates = candidate_windows(&mc_out.u_shapes, &mc_out.suspicious);
    let mut path1_consumed_high: Vec<TimeWindow> = Vec::new();
    let mut path1_consumed_low: Vec<TimeWindow> = Vec::new();
    for mc_window in &mc_candidates {
        for (arc_out, band, consumed) in [
            (&harc_out, Band::High, &mut path1_consumed_high),
            (&larc_out, Band::Low, &mut path1_consumed_low),
        ] {
            for arc_window in candidate_windows(&arc_out.u_shapes, &arc_out.suspicious) {
                if let Some(overlap) = mc_window.intersect(arc_window) {
                    let marked = mark_band(
                        timeline,
                        overlap,
                        band,
                        threshold_a,
                        threshold_b,
                        &mut suspicious,
                    );
                    consumed.push(arc_window);
                    hits.push(PathHit {
                        path: 1,
                        window: overlap,
                        band,
                        marked,
                    });
                }
            }
        }
    }

    // Path 2: un-consumed ARC alarms adjudicated by ME (high band) or
    // HC (low band), or by a direct mean-deviation check of the
    // alarmed interval. The last adjudicator covers diluted attacks:
    // their gradual onset raises no MC peaks, so the MC detector
    // never delimits a segment for Path 1 — but the alarmed interval
    // itself, once the arrival-rate evidence has drawn its
    // boundaries, shows the mean shift plainly.
    let me_intervals: Vec<TimeWindow> = me_out.suspicious.iter().map(|s| s.window).collect();
    let hc_intervals: Vec<TimeWindow> = hc_out.suspicious.iter().map(|s| s.window).collect();
    let overall_trust = if timeline.is_empty() {
        0.5
    } else {
        timeline.iter().map(|e| trust(e.rater())).sum::<f64>() / timeline.len() as f64
    };
    let mean_dev_confirms = |window: TimeWindow| -> bool {
        let slice = timeline.in_window(window);
        if slice.is_empty() {
            return false;
        }
        let mean = slice.iter().map(|e| e.value()).sum::<f64>() / slice.len() as f64;
        let dev = (mean - stream_median).abs();
        let slice_trust = slice.iter().map(|e| trust(e.rater())).sum::<f64>() / slice.len() as f64;
        let less_trusted =
            overall_trust > 0.0 && slice_trust / overall_trust < config.mc.trust_ratio;
        dev > config.mc.threshold1 || (dev > config.mc.threshold2 && less_trusted)
    };
    for (arc_out, band, consumed, adjudicator) in [
        (&harc_out, Band::High, &path1_consumed_high, &me_intervals),
        (&larc_out, Band::Low, &path1_consumed_low, &hc_intervals),
    ] {
        for arc_interval in &arc_out.suspicious {
            if consumed.contains(&arc_interval.window) {
                continue;
            }
            let mut confirmed: Vec<TimeWindow> = adjudicator
                .iter()
                .filter_map(|adj| arc_interval.window.intersect(*adj))
                .collect();
            if confirmed.is_empty() && mean_dev_confirms(arc_interval.window) {
                confirmed.push(arc_interval.window);
            }
            for overlap in confirmed {
                let marked = mark_band(
                    timeline,
                    overlap,
                    band,
                    threshold_a,
                    threshold_b,
                    &mut suspicious,
                );
                hits.push(PathHit {
                    path: 2,
                    window: overlap,
                    band,
                    marked,
                });
            }
        }
    }

    if rrs_obs::enabled() {
        for hit in &hits {
            let name = match hit.path {
                1 => METRIC_PATH1_HITS,
                _ => METRIC_PATH2_HITS,
            };
            rrs_obs::metrics::counter_add(name, 1);
        }
        rrs_obs::metrics::counter_add(METRIC_MARKED_RATINGS, suspicious.len() as u64);
        // Detector-health telemetry. This block runs inside `par_map`
        // workers, so only commuting writes are allowed here: counter
        // adds and sketch observations, never gauges.
        for (fired, name) in [
            (!mc_out.suspicious.is_empty(), METRIC_FIRED_MC),
            (!harc_out.suspicious.is_empty(), METRIC_FIRED_HARC),
            (!larc_out.suspicious.is_empty(), METRIC_FIRED_LARC),
            (!hc_out.suspicious.is_empty(), METRIC_FIRED_HC),
            (!me_out.suspicious.is_empty(), METRIC_FIRED_ME),
        ] {
            if fired {
                rrs_obs::metrics::counter_add(name, 1);
            }
        }
        rrs_obs::metrics::observe_quantile(METRIC_MARKED_PER_PRODUCT, suspicious.len() as f64);
    }

    DetectionResult {
        suspicious,
        mc: mc_out,
        harc: harc_out,
        larc: larc_out,
        hc: hc_out,
        me: me_out,
        hits,
    }
}

/// Collects the time windows a detector considers suspicious: its
/// U-shapes (peak-pair frames) plus its flagged segments.
fn candidate_windows(
    u_shapes: &[rrs_signal::curve::UShape],
    suspicious: &[SuspiciousInterval],
) -> Vec<TimeWindow> {
    let mut out: Vec<TimeWindow> = Vec::with_capacity(u_shapes.len() + suspicious.len());
    for u in u_shapes {
        let (lo, hi) = u.time_range();
        if let (Ok(start), Ok(end)) = (rrs_core::Timestamp::new(lo), rrs_core::Timestamp::new(hi)) {
            if let Ok(window) = TimeWindow::new(start, end) {
                out.push(window);
            }
        }
    }
    out.extend(suspicious.iter().map(|s| s.window));
    out
}

fn arc_empty(variant: ArcVariant) -> ArcOutcome {
    ArcOutcome {
        variant,
        curve: rrs_signal::curve::Curve::default(),
        peaks: Vec::new(),
        u_shapes: Vec::new(),
        segments: Vec::new(),
        suspicious: Vec::new(),
    }
}

/// Marks ratings of the given band inside `window`; returns how many were
/// newly marked.
fn mark_band(
    timeline: TimelineView<'_>,
    window: TimeWindow,
    band: Band,
    threshold_a: f64,
    threshold_b: f64,
    suspicious: &mut BTreeSet<RatingId>,
) -> usize {
    let mut marked = 0;
    for entry in timeline.in_window(window).iter() {
        let hit = match band {
            Band::High => entry.value() > threshold_a,
            Band::Low => entry.value() < threshold_b,
        };
        if hit && suspicious.insert(entry.id()) {
            marked += 1;
        }
    }
    marked
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::rng::RrsRng;
    use rrs_core::rng::Xoshiro256pp;
    use rrs_core::{GroundTruth, Rating, RatingDataset, RatingSource, RatingValue, Timestamp};

    fn ts(d: f64) -> Timestamp {
        Timestamp::new(d).unwrap()
    }

    /// 90 days of fair ratings at ~4/day, mean 4.0.
    fn fair_dataset(seed: u64) -> RatingDataset {
        let mut d = RatingDataset::new();
        fill_fair(&mut d, seed);
        d
    }

    /// Same fair stream appended to any starting dataset, so a scenario
    /// can be materialized identically on both storage engines.
    fn fill_fair(d: &mut RatingDataset, seed: u64) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut rater = 0u32;
        for day in 0..90 {
            let n = 3 + (rng.gen::<u8>() % 3) as usize;
            for slot in 0..n {
                d.insert(
                    Rating::new(
                        RaterId::new(rater),
                        ProductId::new(0),
                        ts(f64::from(day) + slot as f64 / n as f64),
                        RatingValue::new_clamped(4.0 + rng.gen_range(-0.8..0.8)),
                    ),
                    RatingSource::Fair,
                );
                rater += 1;
            }
        }
    }

    fn add_downgrade_burst(
        d: &mut RatingDataset,
        from: f64,
        days: usize,
        per_day: usize,
        value: f64,
    ) {
        let mut rater = 50_000u32;
        for day in 0..days {
            for slot in 0..per_day {
                d.insert(
                    Rating::new(
                        RaterId::new(rater),
                        ProductId::new(0),
                        ts(from + day as f64 + slot as f64 / per_day as f64),
                        RatingValue::new_clamped(value),
                    ),
                    RatingSource::Unfair,
                );
                rater += 1;
            }
        }
    }

    fn horizon() -> TimeWindow {
        TimeWindow::new(ts(0.0), ts(90.0)).unwrap()
    }

    #[test]
    fn fair_data_produces_no_marks() {
        let d = fair_dataset(1);
        let det = JointDetector::default();
        let (marks, results) = det.detect_all(&d, horizon(), |_| 0.5);
        assert!(marks.is_empty(), "false alarms: {} marks", marks.len());
        assert_eq!(results.len(), 1);
    }

    #[test]
    fn strong_downgrade_attack_is_caught_by_path1() {
        let mut d = fair_dataset(2);
        add_downgrade_burst(&mut d, 40.0, 12, 5, 0.8);
        let det = JointDetector::default();
        let tl = d.product(ProductId::new(0)).unwrap();
        let result = det.detect_product(tl, horizon(), |_| 0.5);
        assert!(!result.suspicious.is_empty(), "attack not marked at all");
        assert!(
            result
                .hits
                .iter()
                .any(|h| h.path == 1 && h.band == Band::Low),
            "expected a path-1 low-band hit, got {:?}",
            result.hits
        );
        // Detection quality: most marks should be true unfair ratings.
        let truth = GroundTruth::from_dataset(&d);
        let confusion = truth.score(&result.suspicious);
        assert!(confusion.recall() > 0.5, "recall too low: {confusion}");
        assert!(
            confusion.false_alarm_rate() < 0.2,
            "false alarms too high: {confusion}"
        );
    }

    #[test]
    fn ablating_all_detectors_disables_detection() {
        let mut d = fair_dataset(3);
        add_downgrade_burst(&mut d, 40.0, 12, 5, 0.8);
        let config = DetectorConfig {
            enabled: crate::EnabledDetectors {
                mc: false,
                arc: false,
                hc: false,
                me: false,
            },
            ..DetectorConfig::default()
        };
        let det = JointDetector::new(config);
        let tl = d.product(ProductId::new(0)).unwrap();
        let result = det.detect_product(tl, horizon(), |_| 0.5);
        assert!(result.suspicious.is_empty());
        assert!(result.hits.is_empty());
    }

    #[test]
    fn disabling_arc_silences_both_paths() {
        let mut d = fair_dataset(4);
        add_downgrade_burst(&mut d, 40.0, 12, 5, 0.8);
        let config = DetectorConfig::default().without(crate::AblatedDetector::ArrivalRate);
        let det = JointDetector::new(config);
        let tl = d.product(ProductId::new(0)).unwrap();
        let result = det.detect_product(tl, horizon(), |_| 0.5);
        // Without ARC there is no band evidence, so no marks can be made.
        assert!(result.suspicious.is_empty());
    }

    #[test]
    fn all_intervals_reports_every_detector() {
        let mut d = fair_dataset(5);
        add_downgrade_burst(&mut d, 40.0, 12, 5, 0.8);
        let det = JointDetector::default();
        let tl = d.product(ProductId::new(0)).unwrap();
        let result = det.detect_product(tl, horizon(), |_| 0.5);
        assert!(!result.all_intervals().is_empty());
    }

    #[test]
    fn diluted_extreme_attack_is_adjudicated_by_mean_deviation() {
        // A 40-day drip of near-zeros: no sharp onset for MC peaks, but
        // the L-ARC alarm plus the mean-deviation check on the alarmed
        // interval must still mark it (path 2).
        let mut d = fair_dataset(31);
        for i in 0..50u32 {
            d.insert(
                Rating::new(
                    RaterId::new(70_000 + i),
                    ProductId::new(0),
                    ts(20.0 + f64::from(i) * 0.8),
                    RatingValue::new(0.2).unwrap(),
                ),
                RatingSource::Unfair,
            );
        }
        let det = JointDetector::default();
        let tl = d.product(ProductId::new(0)).unwrap();
        let result = det.detect_product(tl, horizon(), |_| 0.5);
        let truth = GroundTruth::from_dataset(&d);
        let confusion = truth.score(&result.suspicious);
        assert!(
            confusion.recall() > 0.4,
            "diluted drip mostly escaped: {confusion}"
        );
    }

    #[test]
    fn boost_attack_marks_high_band() {
        let mut d = fair_dataset(6);
        // Boost with perfect 5.0s — note fair mean is already 4, so the
        // mean moves little; the arrival + model-error evidence must carry.
        let mut rater = 60_000u32;
        for day in 0..12 {
            for slot in 0..6 {
                d.insert(
                    Rating::new(
                        RaterId::new(rater),
                        ProductId::new(0),
                        ts(40.0 + f64::from(day) + f64::from(slot) / 6.0),
                        RatingValue::new(5.0).unwrap(),
                    ),
                    RatingSource::Unfair,
                );
                rater += 1;
            }
        }
        let det = JointDetector::default();
        let tl = d.product(ProductId::new(0)).unwrap();
        let result = det.detect_product(tl, horizon(), |_| 0.5);
        assert!(
            result.hits.iter().all(|h| h.band == Band::High) || result.hits.is_empty(),
            "boost attack should only ever mark the high band: {:?}",
            result.hits
        );
    }

    rrs_core::props! {
        #[test]
        fn detection_results_are_engine_invariant(
            seed in 0u64..32,
            burst_days in 0usize..12,
            burst_per_day in 3usize..7,
            burst_value in 0.0f64..2.0,
        ) {
            // The row store is the oracle: the columnar engine must
            // reproduce its DetectionResult bit for bit, serially and
            // under the full worker pool.
            let mut col = RatingDataset::columnar();
            let mut row = RatingDataset::row_oracle();
            for d in [&mut col, &mut row] {
                fill_fair(d, seed);
                if burst_days > 0 {
                    add_downgrade_burst(d, 40.0, burst_days, burst_per_day, burst_value);
                }
            }
            let det = JointDetector::default();
            let trust = |r: RaterId| if r.value() >= 50_000 { 0.2 } else { 0.7 };
            let (row_marks, row_results) =
                rrs_core::par::with_threads(1, || det.detect_all(&row, horizon(), trust));
            let (col1_marks, col1_results) =
                rrs_core::par::with_threads(1, || det.detect_all(&col, horizon(), trust));
            let (col8_marks, col8_results) =
                rrs_core::par::with_threads(8, || det.detect_all(&col, horizon(), trust));
            rrs_core::prop_assert!(
                row_marks == col1_marks && row_results == col1_results,
                "columnar path diverged from the row oracle at 1 thread"
            );
            rrs_core::prop_assert!(
                col1_marks == col8_marks && col1_results == col8_results,
                "columnar path diverged between 1 and 8 threads"
            );
        }
    }
}
