//! Incremental (online) joint detection: rolling per-(product, window)
//! state that lets each scoring epoch consume only the ratings that
//! arrived since the previous epoch.
//!
//! The batch path re-derives every indicator curve from the full borrowed
//! prefix each epoch, so the per-epoch `signal` stage cost grows with the
//! prefix length. This module replays **exactly the same float
//! operations** on cached state instead, keyed on one observation: most
//! of every indicator curve is *settled* — no future arrival can change
//! it — because arrivals are time-ordered and each epoch's horizon end is
//! a lower bound on all later rating times.
//!
//! Settlement conditions, per detector:
//!
//! * **MC** — the point at rating `k` reads `[t_k − h, t_k + h)`; it is
//!   settled once `t_k + h ≤ E` (horizon end), because both
//!   `partition_point` boundaries and the prefix-sum differences are then
//!   frozen. Settled indices form a prefix of the stream.
//! * **ARC** — the point at day `k` reads day bins `[k − w, k + w)` with
//!   `w = min(D, k)` once the edge clip stops binding; it is settled once
//!   `k + min(D, k)` whole days are complete (`⌊E − start⌋`). Daily
//!   counts themselves are appended in O(1) per rating; a *change of the
//!   stream median* re-bands history, so the band is rebuilt (and its
//!   settled points discarded) whenever the median's bit pattern moves.
//! * **HC / ME** — windows are index-based (`[start, start + w)`), so a
//!   window is settled the moment it fits inside the stream; each is
//!   evaluated exactly once, ever.
//!
//! Work that genuinely depends on the whole prefix each epoch — the MC
//! variance, the median, run-merging, peak finding, segmentation, and the
//! two-path integration — is a handful of linear passes and stays in the
//! batch code, *shared* with this path (see [`crate::mc::judge_segments`]
//! and friends), which is what makes the agreement exact rather than
//! approximate: the oracle property tests in this module assert
//! `DetectionResult` equality epoch by epoch, and `scripts/verify.sh`
//! byte-diffs whole report trees between the two modes.
//!
//! The cache trusts its caller to feed it *prefix views of one growing
//! stream* (the epoch loop's shape). Every absorb re-checks the cheap
//! invariants — same horizon start, monotone horizon end, append-only
//! time-sorted entries at or beyond the previous horizon end, matching
//! tail entry — and on any violation falls back to a full rebuild: wrong
//! inputs cost speed, never correctness.

use crate::arc::{self, ArcConfig, ArcOutcome, ArcVariant};
use crate::hc::{self, HcConfig, HcOutcome};
use crate::integrate::{integrate_outcomes, DetectionResult, JointDetector};
use crate::mc::{self, McConfig, McOutcome};
use crate::me::{self, MeConfig, MeOutcome};
use rrs_core::{DatasetView, ProductId, RaterId, RatingId, TimeWindow, TimelineView};
use rrs_signal::curve::{Curve, CurvePoint};
use rrs_signal::{ArAccumulator, Cusum, DecayedHistogram, Ewma, Welford, WindowedWelford};
use std::collections::{BTreeMap, BTreeSet};

// Metric names, declared as constants per the `metric-name` lint rule.
const METRIC_CUSUM_ALARMS: &str = "signal.online.cusum_alarms";
const METRIC_EWMA_ALARMS: &str = "signal.online.ewma_alarms";
const METRIC_ABSORBED_RATINGS: &str = "signal.online.absorbed_ratings";
const METRIC_REBUILDS: &str = "signal.online.rebuilds";
const METRIC_PRODUCTS: &str = "signal.online.products";
const METRIC_MAX_WINDOW_VARIANCE: &str = "signal.online.max_window_variance";
const METRIC_MIN_AR_ERROR: &str = "signal.online.min_ar_error";

/// Rolling detector state carried across scoring epochs, one slot per
/// product. Feed it to [`JointDetector::detect_all_online`] with a
/// growing prefix view each epoch; starting from a fresh state is always
/// correct (the first epoch is simply a full build).
#[derive(Debug, Default)]
pub struct OnlineState {
    products: BTreeMap<ProductId, ProductState>,
}

impl OnlineState {
    /// Creates an empty state (no products tracked yet).
    #[must_use]
    pub fn new() -> Self {
        OnlineState::default()
    }

    /// Number of products holding rolling state.
    #[must_use]
    pub fn products_tracked(&self) -> usize {
        self.products.len()
    }

    /// Captures a self-contained, bit-exact image of the rolling state.
    ///
    /// Every `f64` is carried as its bit pattern, so the image survives
    /// any text round trip without rounding. Structures that are pure
    /// functions of the captured ones — the stream prefix sums, the
    /// sorted mirror, HC's sliding window multiset — are *not* stored;
    /// [`OnlineState::restore`] rebuilds them by replaying the exact
    /// push/sort operations the live path uses, which keeps the image
    /// minimal without costing a single bit of fidelity.
    ///
    /// Rolling telemetry is excluded on purpose: it is diagnostics that
    /// never influences detection, and a restored process starts with
    /// fresh observability sinks anyway.
    #[must_use]
    pub fn snapshot(&self) -> OnlineSnapshot {
        let products = self
            .products
            .iter()
            .map(|(&product, state)| ProductSnapshot {
                product,
                values_bits: state.cache.values.iter().map(|v| v.to_bits()).collect(),
                times_bits: state.cache.times.iter().map(|t| t.to_bits()).collect(),
                start_bits: state.cache.start_bits,
                end_bits: state.cache.end_days.to_bits(),
                mc: CurveCursorSnapshot {
                    settled: snapshot_points(&state.mc.settled),
                    scan_from: state.mc.scan_from as u64,
                },
                harc: snapshot_arc_band(&state.harc),
                larc: snapshot_arc_band(&state.larc),
                hc: CurveCursorSnapshot {
                    settled: snapshot_points(&state.hc.settled),
                    scan_from: state.hc.next_start as u64,
                },
                me: CurveCursorSnapshot {
                    settled: snapshot_points(&state.me.settled),
                    scan_from: state.me.next_start as u64,
                },
            })
            .collect();
        OnlineSnapshot { products }
    }

    /// Rebuilds rolling state from a [`snapshot`](OnlineState::snapshot).
    ///
    /// The restored state is observably identical to the captured one:
    /// feeding both the same future epochs produces bit-identical
    /// [`DetectionResult`]s (the crash-replay tests in `rrs-serve` and
    /// the round-trip tests below lock this). `snapshot()` of the
    /// restored state equals the input image.
    #[must_use]
    pub fn restore(snapshot: &OnlineSnapshot) -> Self {
        let mut products = BTreeMap::new();
        for p in &snapshot.products {
            let mut cache = StreamCache {
                start_bits: p.start_bits,
                end_days: f64::from_bits(p.end_bits),
                ..StreamCache::default()
            };
            for (&v, &t) in p.values_bits.iter().zip(&p.times_bits) {
                cache.push(f64::from_bits(v), f64::from_bits(t));
            }
            let state = ProductState {
                cache,
                mc: McState {
                    settled: restore_points(&p.mc.settled),
                    scan_from: p.mc.scan_from as usize,
                },
                harc: restore_arc_band(&p.harc),
                larc: restore_arc_band(&p.larc),
                // HC's sliding sorted multiset is deliberately left
                // empty: `slide_sorted_window` falls back to a from-
                // scratch sort, whose result is bit-identical to the
                // slid one (same multiset, same `total_cmp` order).
                hc: HcWindowState {
                    settled: restore_points(&p.hc.settled),
                    next_start: p.hc.scan_from as usize,
                    sorted: Vec::new(),
                    prev_start: None,
                },
                me: WindowedState {
                    settled: restore_points(&p.me.settled),
                    next_start: p.me.scan_from as usize,
                },
                telemetry: None,
            };
            products.insert(p.product, state);
        }
        OnlineState { products }
    }
}

/// A settled indicator-curve point in snapshot form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CurvePointSnapshot {
    /// Rating index the point was computed at.
    pub index: u64,
    /// Bit pattern of the point's time (days).
    pub time_bits: u64,
    /// Bit pattern of the indicator value.
    pub value_bits: u64,
}

/// Settled points plus the scan cursor of one detector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CurveCursorSnapshot {
    /// Points that no future arrival can change.
    pub settled: Vec<CurvePointSnapshot>,
    /// First unsettled index (ratings for MC, window starts for HC/ME).
    pub scan_from: u64,
}

/// One H-ARC/L-ARC band in snapshot form.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArcBandSnapshot {
    /// Daily in-band arrival counts over the horizon.
    pub counts: Vec<u32>,
    /// Entries already folded into `counts`.
    pub absorbed: u64,
    /// Bit pattern of the stream median the band was built under.
    pub median_bits: Option<u64>,
    /// Settled curve points and the first unsettled day index.
    pub cursor: CurveCursorSnapshot,
}

/// One product's rolling state in snapshot form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductSnapshot {
    /// The product this slot tracks.
    pub product: ProductId,
    /// Bit patterns of the cached stream values, in arrival order.
    pub values_bits: Vec<u64>,
    /// Bit patterns of the cached stream times, in arrival order.
    pub times_bits: Vec<u64>,
    /// Bit pattern of the horizon start offsets were computed from.
    pub start_bits: u64,
    /// Bit pattern of the last absorbed horizon end (days).
    pub end_bits: u64,
    /// MC settled points and cursor.
    pub mc: CurveCursorSnapshot,
    /// High-band ARC state.
    pub harc: ArcBandSnapshot,
    /// Low-band ARC state.
    pub larc: ArcBandSnapshot,
    /// HC settled points and next window start.
    pub hc: CurveCursorSnapshot,
    /// ME settled points and next window start.
    pub me: CurveCursorSnapshot,
}

/// Self-contained, bit-exact image of an [`OnlineState`], suitable for
/// durable checkpointing (see `rrs-serve`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OnlineSnapshot {
    /// Per-product images, in product order.
    pub products: Vec<ProductSnapshot>,
}

fn snapshot_points(points: &[CurvePoint]) -> Vec<CurvePointSnapshot> {
    points
        .iter()
        .map(|p| CurvePointSnapshot {
            index: p.index as u64,
            time_bits: p.time.to_bits(),
            value_bits: p.value.to_bits(),
        })
        .collect()
}

fn restore_points(points: &[CurvePointSnapshot]) -> Vec<CurvePoint> {
    points
        .iter()
        .map(|p| CurvePoint {
            index: p.index as usize,
            time: f64::from_bits(p.time_bits),
            value: f64::from_bits(p.value_bits),
        })
        .collect()
}

fn snapshot_arc_band(band: &ArcBandState) -> ArcBandSnapshot {
    ArcBandSnapshot {
        counts: band.counts.clone(),
        absorbed: band.absorbed as u64,
        median_bits: band.median_bits,
        cursor: CurveCursorSnapshot {
            settled: snapshot_points(&band.settled),
            scan_from: band.scan_from as u64,
        },
    }
}

fn restore_arc_band(snapshot: &ArcBandSnapshot) -> ArcBandState {
    ArcBandState {
        counts: snapshot.counts.clone(),
        absorbed: snapshot.absorbed as usize,
        median_bits: snapshot.median_bits,
        settled: restore_points(&snapshot.cursor.settled),
        scan_from: snapshot.cursor.scan_from as usize,
    }
}

/// All rolling state for one product.
#[derive(Debug, Default, Clone)]
struct ProductState {
    cache: StreamCache,
    mc: McState,
    harc: ArcBandState,
    larc: ArcBandState,
    hc: HcWindowState,
    me: WindowedState,
    /// Rolling diagnostics, maintained only while the observability sink
    /// is enabled. They feed counters/gauges and never influence
    /// detection, so report trees stay identical across modes.
    telemetry: Option<Telemetry>,
}

/// What [`StreamCache::absorb`] did with the epoch's entries.
enum Absorbed {
    /// Entries at and beyond `new_from` were appended to the cache.
    Appended { new_from: usize },
    /// A contract violation (or the first epoch) forced a full rebuild;
    /// every settled structure derived from the cache must be discarded.
    Rebuilt,
}

/// Append-only mirror of one product's stream, maintaining exactly the
/// intermediate vectors the batch detectors build per call: values,
/// times, prefix sums (same fold order), and the `total_cmp`-sorted
/// values that back `stats::median`.
#[derive(Debug, Default, Clone)]
struct StreamCache {
    values: Vec<f64>,
    times: Vec<f64>,
    /// Prefix sums of `values`, length `values.len() + 1` once non-empty.
    prefix: Vec<f64>,
    /// `values` sorted by `total_cmp` — identical to what
    /// `stats::median` produces internally, since equal keys are
    /// bit-identical.
    sorted: Vec<f64>,
    /// Bit pattern of the horizon start all offsets were computed from.
    start_bits: u64,
    /// Horizon end (days) of the last absorb; settled state is only
    /// valid while future arrivals land at or beyond it.
    end_days: f64,
}

impl StreamCache {
    fn absorb(&mut self, timeline: TimelineView<'_>, horizon: TimeWindow) -> Absorbed {
        let start = horizon.start().as_days();
        let end = horizon.end().as_days();
        if !self.consistent_with(timeline, start, end) {
            self.rebuild(timeline, start, end);
            return Absorbed::Rebuilt;
        }
        let new_from = self.values.len();
        for i in new_from..timeline.len() {
            let t = timeline.time_at(i).as_days();
            if t < self.end_days {
                // An arrival below the previous horizon end could land
                // inside windows already settled; start over.
                self.rebuild(timeline, start, end);
                return Absorbed::Rebuilt;
            }
            self.push(timeline.value_at(i), t);
        }
        self.end_days = end;
        Absorbed::Appended { new_from }
    }

    /// O(1) guards over the epoch-loop contract. The tail spot-check
    /// catches a swapped dataset even when lengths happen to line up.
    fn consistent_with(&self, timeline: TimelineView<'_>, start: f64, end: f64) -> bool {
        let n = self.values.len();
        if n == 0 {
            // An empty cache has nothing to protect, but routing the
            // first non-empty epoch through `rebuild` keeps one
            // initialization path.
            return timeline.is_empty();
        }
        timeline.len() >= n
            && start.to_bits() == self.start_bits
            && end >= self.end_days
            && timeline.value_at(n - 1).to_bits() == self.values[n - 1].to_bits()
            && timeline.time_at(n - 1).as_days().to_bits() == self.times[n - 1].to_bits()
    }

    fn rebuild(&mut self, timeline: TimelineView<'_>, start: f64, end: f64) {
        self.values.clear();
        self.times.clear();
        self.prefix.clear();
        self.sorted.clear();
        self.start_bits = start.to_bits();
        for i in 0..timeline.len() {
            self.push(timeline.value_at(i), timeline.time_at(i).as_days());
        }
        self.end_days = end;
    }

    fn push(&mut self, v: f64, t: f64) {
        if self.prefix.is_empty() {
            self.prefix.push(0.0);
        }
        let last = self.prefix[self.prefix.len() - 1];
        self.prefix.push(last + v);
        self.values.push(v);
        self.times.push(t);
        let pos = self.sorted.partition_point(|x| x.total_cmp(&v).is_lt());
        self.sorted.insert(pos, v);
    }

    /// `stats::median` replayed on the maintained sorted vector.
    fn median(&self) -> Option<f64> {
        let v = &self.sorted;
        if v.is_empty() {
            return None;
        }
        let mid = v.len() / 2;
        Some(if v.len() % 2 == 1 {
            v[mid]
        } else {
            (v[mid - 1] + v[mid]) / 2.0
        })
    }
}

/// Settled MC indicator points plus the first unsettled rating index.
#[derive(Debug, Default, Clone)]
struct McState {
    settled: Vec<CurvePoint>,
    scan_from: usize,
}

/// One H-ARC/L-ARC band: incrementally maintained daily counts plus the
/// settled slice of the ARC curve.
#[derive(Debug, Default, Clone)]
struct ArcBandState {
    /// The band's daily counts over the horizon —
    /// `daily_counts_filtered` replayed bitwise, append-only.
    counts: Vec<u32>,
    /// Entries already folded into `counts`.
    absorbed: usize,
    /// Bit pattern of the stream median the band threshold derives from.
    /// The median re-bands *history* when it moves, so any change forces
    /// a rebuild of counts and settled points.
    median_bits: Option<u64>,
    settled: Vec<CurvePoint>,
    scan_from: usize,
}

/// Settled curve points of an index-windowed detector (HC/ME) plus the
/// next window start to evaluate.
#[derive(Debug, Default, Clone)]
struct WindowedState {
    settled: Vec<CurvePoint>,
    next_start: usize,
}

/// HC's windowed state plus a sliding sorted multiset of the most
/// recently evaluated window, so each new window costs O(w)
/// insert/remove instead of an O(w log w) sort.
#[derive(Debug, Default, Clone)]
struct HcWindowState {
    settled: Vec<CurvePoint>,
    next_start: usize,
    /// `values[prev_start..prev_start + w]` in `total_cmp` order.
    sorted: Vec<f64>,
    /// Start index of the window `sorted` currently mirrors.
    prev_start: Option<usize>,
}

/// Rolling per-product instruments exercising the incremental statistics
/// of `rrs-signal`: full-stream and windowed Welford moments, a
/// count-decayed value histogram, incremental AR residual state, and the
/// CUSUM/EWMA change charts. Pure diagnostics — alarms surface as
/// counters, never as detection input.
#[derive(Debug, Clone)]
struct Telemetry {
    welford: Welford,
    windowed: WindowedWelford,
    histogram: DecayedHistogram,
    ar: ArAccumulator,
    cusum: Cusum,
    ewma: Ewma,
}

impl Telemetry {
    fn new() -> Self {
        // Centered on the rating scale's midpoint with generous bands:
        // the charts are meant to flag gross stream shifts in traces,
        // not to re-implement the detectors.
        Telemetry {
            welford: Welford::new(),
            windowed: WindowedWelford::new(64),
            histogram: DecayedHistogram::new(0.0, 5.0, 10, 0.99),
            ar: ArAccumulator::new(4),
            cusum: Cusum::new(2.5, 0.25, 8.0),
            ewma: Ewma::new(2.5, 1.0, 0.2, 4.0),
        }
    }

    fn observe(&mut self, v: f64) {
        self.welford.push(v);
        self.windowed.push(v);
        self.histogram.push(v);
        self.ar.push(v);
        if self.cusum.push(v).is_some() {
            rrs_obs::metrics::counter_add(METRIC_CUSUM_ALARMS, 1);
        }
        if self.ewma.push(v).is_some() {
            rrs_obs::metrics::counter_add(METRIC_EWMA_ALARMS, 1);
        }
    }
}

/// Incremental MC: settle every point whose right window closed at or
/// before the horizon end, then evaluate only the live tail.
fn mc_online<F>(
    cache: &StreamCache,
    state: &mut McState,
    timeline: TimelineView<'_>,
    horizon_end: f64,
    stream_median: f64,
    config: &McConfig,
    trust: &F,
) -> McOutcome
where
    F: Fn(RaterId) -> f64,
{
    let n = cache.values.len();
    if n == 0 || n < 2 * config.min_half_ratings {
        return McOutcome::default();
    }
    let signal_span = rrs_obs::trace::span("signal.mc");
    // Written `t + h <= E` — the exact freshness condition — rather than
    // the algebraically equal but not bitwise-safe `t <= E - h`.
    let settle_until = cache
        .times
        .partition_point(|&t| t + config.half_window_days <= horizon_end)
        .max(state.scan_from);
    // The window bounds `lo`/`hi` are monotone in `k` (times are sorted,
    // `t_k` is non-decreasing), so two pointers advanced linearly land on
    // exactly the `partition_point` indices the batch path computes —
    // integer-for-integer, hence bit-identical points — at O(n) total
    // comparisons per epoch instead of two binary searches per point.
    let h = config.half_window_days;
    let mut lo = 0usize;
    let mut hi = 0usize;
    let point_at = |k: usize, lo: &mut usize, hi: &mut usize| {
        let t = cache.times[k];
        while *lo < n && cache.times[*lo] < t - h {
            *lo += 1;
        }
        while *hi < n && cache.times[*hi] < t + h {
            *hi += 1;
        }
        mc::indicator_point_with_bounds(&cache.times, &cache.prefix, k, *lo, *hi, config)
    };
    for k in state.scan_from..settle_until {
        if let Some(p) = point_at(k, &mut lo, &mut hi) {
            state.settled.push(p);
        }
    }
    state.scan_from = settle_until;
    let mut points = state.settled.clone();
    for k in settle_until..n {
        if let Some(p) = point_at(k, &mut lo, &mut hi) {
            points.push(p);
        }
    }
    let curve = Curve::new(points);
    let sigma2 = rrs_signal::stats::variance(&cache.values)
        .unwrap_or(0.0)
        .max(1e-6);
    let peak_threshold = config.glrt_gamma * 2.0 * sigma2;
    let peaks = curve.find_peaks(peak_threshold, config.peak_separation);
    let u_shapes = curve.u_shapes_between(&peaks, config.valley_ratio);
    drop(signal_span);
    mc::judge_segments(
        timeline,
        &cache.times,
        &cache.prefix,
        curve,
        peaks,
        u_shapes,
        stream_median,
        config,
        trust,
    )
}

/// Incremental H-ARC/L-ARC: O(1) count appends while the stream median
/// holds its bit pattern, full rebuild when it moves (a moved median
/// re-bands every historical rating), then settle every curve point
/// whose day window is complete.
fn arc_band_online(
    band: &mut ArcBandState,
    cache_rebuilt: bool,
    timeline: TimelineView<'_>,
    horizon: TimeWindow,
    variant: ArcVariant,
    stream_median: f64,
    config: &ArcConfig,
) -> ArcOutcome {
    let signal_span = rrs_obs::trace::span("signal.arc");
    let median_bits = stream_median.to_bits();
    let days = horizon.length().get().ceil() as usize;
    let rebuild = cache_rebuilt
        || band.median_bits != Some(median_bits)
        || band.absorbed > timeline.len()
        || days < band.counts.len();
    if rebuild {
        band.counts = vec![0u32; days];
        band.settled.clear();
        band.scan_from = 0;
        band.absorbed = 0;
        band.median_bits = Some(median_bits);
    } else if days > band.counts.len() {
        band.counts.resize(days, 0);
    }
    // Replays `daily_counts_filtered` bitwise: same thresholds derived
    // from the same median, same in-window restriction, same offset and
    // last-bucket clamp expressions. The clamp never binds for in-window
    // entries (`offset < E − start ≤ days`), so counts appended under an
    // older, shorter `days` are identical to a fresh batch computation.
    let threshold_a = 0.5 * stream_median;
    let threshold_b = 0.5 * stream_median + 0.5;
    for i in band.absorbed..timeline.len() {
        let time = timeline.time_at(i);
        if time < horizon.start() || time >= horizon.end() {
            continue;
        }
        let keep = match variant {
            ArcVariant::All => true,
            ArcVariant::High => timeline.value_at(i) > threshold_a,
            ArcVariant::Low => timeline.value_at(i) < threshold_b,
        };
        if keep {
            let offset = time.as_days() - horizon.start().as_days();
            let idx = (offset.floor() as usize).min(days.saturating_sub(1));
            band.counts[idx] += 1;
        }
    }
    band.absorbed = timeline.len();

    let n = band.counts.len();
    if n < 2 * config.min_half_days {
        drop(signal_span);
        return ArcOutcome::empty(variant);
    }
    let day0 = horizon.start();
    // Prefix sums over the integer counts make each curve evaluation O(1)
    // while staying bit-identical to the slice-based batch point (see
    // `curve_point_from_prefix`). Rebuilt per epoch in O(days) — cheaper
    // than even one windowed GLRT over slices.
    let mut prefix = vec![0u64; n + 1];
    for (i, &c) in band.counts.iter().enumerate() {
        prefix[i + 1] = prefix[i] + u64::from(c);
    }
    // Whole days completed by the horizon: bins below this index are
    // frozen, because future arrivals carry times at or beyond the
    // horizon end and therefore land in bins at or beyond it.
    let complete = (horizon.end().as_days() - horizon.start().as_days()).floor() as usize;
    let mut k = band.scan_from.max(config.min_half_days);
    while k + config.half_window_days.min(k) <= complete && k + config.min_half_days <= n {
        if let Some(p) = arc::curve_point_from_prefix(&prefix, day0, k, config) {
            band.settled.push(p);
        }
        k += 1;
    }
    band.scan_from = k;
    let mut points = band.settled.clone();
    for k in k..=(n - config.min_half_days) {
        if let Some(p) = arc::curve_point_from_prefix(&prefix, day0, k, config) {
            points.push(p);
        }
    }
    let curve = Curve::new(points);
    let peaks = curve.find_peaks(config.glrt_threshold, config.peak_separation);
    let u_shapes = curve.u_shapes_between(&peaks, config.valley_ratio);
    drop(signal_span);
    arc::judge_counts(&band.counts, day0, variant, config, curve, peaks, u_shapes)
}

/// Incremental HC: each window is evaluated exactly once, when it first
/// fits inside the stream, against a sliding sorted multiset of its
/// values (bit-identical to sorting each window from scratch — same
/// multiset, same `total_cmp` order).
fn hc_online(cache: &StreamCache, state: &mut HcWindowState, config: &HcConfig) -> HcOutcome {
    let n = cache.values.len();
    let w = config.window_ratings;
    if n < w || w == 0 {
        return HcOutcome::default();
    }
    let signal_span = rrs_obs::trace::span("signal.hc");
    let step = config.step.max(1);
    while state.next_start + w <= n {
        let s = state.next_start;
        slide_sorted_window(state, &cache.values, s, w, step);
        state.settled.push(hc::window_point_presorted(
            &state.sorted,
            &cache.times,
            s,
            config,
        ));
        state.prev_start = Some(s);
        state.next_start += step;
    }
    let curve = Curve::new(state.settled.clone());
    drop(signal_span);
    let _detect_span = rrs_obs::trace::span("detect.hc");
    let suspicious = hc::suspicious_runs(&curve, &cache.times, config);
    HcOutcome { curve, suspicious }
}

/// Brings `state.sorted` to the multiset of `values[s..s + w]` in
/// `total_cmp` order: slides from the previous window when it overlaps
/// the new one, rebuilds from scratch otherwise (first window, a step
/// at least as wide as the window, or a defensive miss on removal —
/// `total_cmp` equality is bit equality, so every element leaving the
/// window is found at its `partition_point` unless the invariant was
/// broken).
fn slide_sorted_window(state: &mut HcWindowState, values: &[f64], s: usize, w: usize, step: usize) {
    let slid =
        step < w && state.sorted.len() == w && s >= step && state.prev_start == Some(s - step) && {
            let prev = s - step;
            let mut ok = true;
            for &v in &values[prev..s] {
                let idx = state.sorted.partition_point(|x| x.total_cmp(&v).is_lt());
                if idx < state.sorted.len() && state.sorted[idx].to_bits() == v.to_bits() {
                    state.sorted.remove(idx);
                } else {
                    ok = false;
                    break;
                }
            }
            if ok {
                for &v in &values[prev + w..s + w] {
                    let idx = state.sorted.partition_point(|x| x.total_cmp(&v).is_lt());
                    state.sorted.insert(idx, v);
                }
            }
            ok
        };
    if !slid {
        state.sorted.clear();
        state.sorted.extend_from_slice(&values[s..s + w]);
        state.sorted.sort_by(|a, b| a.total_cmp(b));
    }
}

/// Incremental ME: mirror of [`hc_online`] with a fallible AR fit.
fn me_online(cache: &StreamCache, state: &mut WindowedState, config: &MeConfig) -> MeOutcome {
    let n = cache.values.len();
    let w = config.window_ratings;
    if n < w || w == 0 || config.order == 0 {
        return MeOutcome::default();
    }
    let signal_span = rrs_obs::trace::span("signal.me");
    let step = config.step.max(1);
    while state.next_start + w <= n {
        if let Some(p) = me::window_point(&cache.values, &cache.times, state.next_start, config) {
            state.settled.push(p);
        }
        state.next_start += step;
    }
    let curve = Curve::new(state.settled.clone());
    drop(signal_span);
    let _detect_span = rrs_obs::trace::span("detect.me");
    let suspicious = me::suspicious_runs(&curve, &cache.times, config);
    MeOutcome { curve, suspicious }
}

/// One product's incremental epoch: absorb new arrivals, run the four
/// detectors against rolling state, integrate.
fn detect_product_online<F>(
    detector: &JointDetector,
    timeline: TimelineView<'_>,
    horizon: TimeWindow,
    state: &mut ProductState,
    trust: &F,
) -> DetectionResult
where
    F: Fn(RaterId) -> f64,
{
    let online_span = rrs_obs::trace::span("signal.online");
    let absorbed = state.cache.absorb(timeline, horizon);
    let rebuilt = matches!(absorbed, Absorbed::Rebuilt);
    if rebuilt {
        state.mc = McState::default();
        state.hc = HcWindowState::default();
        state.me = WindowedState::default();
        // The ARC bands rebuild themselves via the flag passed below.
    }
    let new_from = match absorbed {
        Absorbed::Appended { new_from } => new_from,
        Absorbed::Rebuilt => 0,
    };
    let stream_median = state.cache.median().unwrap_or(2.5);
    drop(online_span);
    if rrs_obs::enabled() {
        // Rolling instruments are diagnostics riding along with the
        // stream, not detection work — billed to their own stage so the
        // `signal` totals reflect what detection itself costs.
        let _telemetry_span = rrs_obs::trace::span("obs.telemetry");
        let telemetry = state.telemetry.get_or_insert_with(Telemetry::new);
        for &v in &state.cache.values[new_from..] {
            telemetry.observe(v);
        }
        rrs_obs::metrics::counter_add(
            METRIC_ABSORBED_RATINGS,
            (state.cache.values.len() - new_from) as u64,
        );
        if rebuilt {
            rrs_obs::metrics::counter_add(METRIC_REBUILDS, 1);
        }
    }

    let config = detector.config();
    let enabled = config.enabled;
    let mc_out = if enabled.mc {
        mc_online(
            &state.cache,
            &mut state.mc,
            timeline,
            horizon.end().as_days(),
            stream_median,
            &config.mc,
            trust,
        )
    } else {
        McOutcome::default()
    };
    let (harc_out, larc_out) = if enabled.arc {
        (
            arc_band_online(
                &mut state.harc,
                rebuilt,
                timeline,
                horizon,
                ArcVariant::High,
                stream_median,
                &config.arc,
            ),
            arc_band_online(
                &mut state.larc,
                rebuilt,
                timeline,
                horizon,
                ArcVariant::Low,
                stream_median,
                &config.arc,
            ),
        )
    } else {
        (
            ArcOutcome::empty(ArcVariant::High),
            ArcOutcome::empty(ArcVariant::Low),
        )
    };
    let hc_out = if enabled.hc {
        hc_online(&state.cache, &mut state.hc, &config.hc)
    } else {
        HcOutcome::default()
    };
    let me_out = if enabled.me {
        me_online(&state.cache, &mut state.me, &config.me)
    } else {
        MeOutcome::default()
    };
    integrate_outcomes(
        config,
        timeline,
        mc_out,
        harc_out,
        larc_out,
        hc_out,
        me_out,
        stream_median,
        trust,
    )
}

impl JointDetector {
    /// Incremental variant of [`JointDetector::detect_all`]: identical
    /// output (the oracle property tests assert exact equality and the
    /// verify script byte-diffs report trees), but each epoch's signal
    /// stage touches only the ratings that arrived since the previous
    /// call with the same `state`.
    ///
    /// The caller keeps one [`OnlineState`] per evaluation and feeds
    /// growing prefix views of the same dataset, exactly like the
    /// P-scheme epoch loop. Any departure from that contract is detected
    /// by the cache guards and answered with a rebuild — wrong usage
    /// degrades to batch speed, never to wrong results.
    ///
    /// Products are independent; state slots are moved out of the map,
    /// carried through [`rrs_core::par::par_map_owned`] (product order,
    /// so the output is identical at any thread count), and re-inserted.
    pub fn detect_all_online<'a, D, F>(
        &self,
        dataset: D,
        horizon: TimeWindow,
        trust: F,
        state: &mut OnlineState,
    ) -> (BTreeSet<RatingId>, Vec<(ProductId, DetectionResult)>)
    where
        D: Into<DatasetView<'a>>,
        F: Fn(RaterId) -> f64 + Sync,
    {
        let view = dataset.into();
        let trust = &trust;
        let tasks: Vec<(ProductId, TimelineView<'a>, ProductState)> = view
            .products()
            .iter()
            .map(|&(pid, timeline)| {
                (
                    pid,
                    timeline,
                    state.products.remove(&pid).unwrap_or_default(),
                )
            })
            .collect();
        let mut per_product = Vec::with_capacity(tasks.len());
        for (pid, result, product_state) in
            rrs_core::par::par_map_owned(tasks, |_, (pid, timeline, mut product_state)| {
                let result =
                    detect_product_online(self, timeline, horizon, &mut product_state, trust);
                (pid, result, product_state)
            })
        {
            state.products.insert(pid, product_state);
            per_product.push((pid, result));
        }
        let mut all = BTreeSet::new();
        for (_, result) in &per_product {
            all.extend(result.suspicious.iter().copied());
        }
        if rrs_obs::enabled() {
            epoch_gauges(state);
        }
        (all, per_product)
    }
}

/// Epoch-level gauges over the rolling telemetry, emitted serially in
/// product order after the parallel map (so values are thread-count
/// independent).
fn epoch_gauges(state: &OnlineState) {
    rrs_obs::metrics::gauge_set(METRIC_PRODUCTS, state.products.len() as f64);
    let mut max_window_variance: Option<f64> = None;
    let mut min_ar_error: Option<f64> = None;
    for product_state in state.products.values() {
        let Some(t) = &product_state.telemetry else {
            continue;
        };
        if let Some(v) = t.windowed.variance() {
            max_window_variance = Some(max_window_variance.map_or(v, |m| m.max(v)));
        }
        if let Ok(model) = t.ar.fit() {
            let e = model.normalized_error();
            min_ar_error = Some(min_ar_error.map_or(e, |m| m.min(e)));
        }
    }
    if let Some(v) = max_window_variance {
        rrs_obs::metrics::gauge_set(METRIC_MAX_WINDOW_VARIANCE, v);
    }
    if let Some(e) = min_ar_error {
        rrs_obs::metrics::gauge_set(METRIC_MIN_AR_ERROR, e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use rrs_core::rng::RrsRng;
    use rrs_core::rng::Xoshiro256pp;
    use rrs_core::{
        prop_assert, props, Rating, RatingDataset, RatingSource, RatingValue, Timestamp,
    };

    fn ts(d: f64) -> Timestamp {
        Timestamp::new(d).unwrap()
    }

    /// 90 days of fair ratings at ~4/day over two products.
    fn fair_dataset(seed: u64) -> RatingDataset {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut d = RatingDataset::new();
        let mut rater = 0u32;
        for product in 0..2u16 {
            for day in 0..90 {
                let n = 3 + (rng.gen::<u8>() % 3) as usize;
                for slot in 0..n {
                    d.insert(
                        Rating::new(
                            RaterId::new(rater % 211),
                            ProductId::new(product),
                            ts(f64::from(day) + slot as f64 / n as f64),
                            RatingValue::new_clamped(4.0 + rng.gen_range(-0.8..0.8)),
                        ),
                        RatingSource::Fair,
                    );
                    rater += 1;
                }
            }
        }
        d
    }

    fn add_burst(d: &mut RatingDataset, from: f64, days: usize, per_day: usize, value: f64) {
        let mut rater = 50_000u32;
        for day in 0..days {
            for slot in 0..per_day {
                d.insert(
                    Rating::new(
                        RaterId::new(rater),
                        ProductId::new(0),
                        ts(from + day as f64 + slot as f64 / per_day as f64),
                        RatingValue::new_clamped(value),
                    ),
                    RatingSource::Unfair,
                );
                rater += 1;
            }
        }
    }

    /// Splits a varying trust landscape over the rater ids.
    fn trust_fn(r: RaterId) -> f64 {
        if r.value() >= 50_000 {
            0.2
        } else if r.value().is_multiple_of(3) {
            0.4
        } else {
            0.8
        }
    }

    /// Runs batch and online detection over growing prefixes and asserts
    /// full `DetectionResult` equality at every epoch.
    fn assert_epochs_agree(d: &RatingDataset, ends: &[f64]) {
        let detector = JointDetector::default();
        let mut state = OnlineState::new();
        for &end in ends {
            let window = TimeWindow::new(ts(0.0), ts(end)).unwrap();
            let prefix = d.prefix_view(window);
            let (batch_marks, batch_results) = detector.detect_all(&prefix, window, trust_fn);
            let (online_marks, online_results) =
                detector.detect_all_online(&prefix, window, trust_fn, &mut state);
            assert_eq!(batch_marks, online_marks, "marks diverged at end={end}");
            assert_eq!(
                batch_results, online_results,
                "per-product results diverged at end={end}"
            );
        }
    }

    #[test]
    fn fair_epochs_agree_with_batch() {
        let d = fair_dataset(1);
        assert_epochs_agree(&d, &[30.0, 60.0, 90.0]);
    }

    #[test]
    fn attacked_epochs_agree_with_batch() {
        let mut d = fair_dataset(2);
        add_burst(&mut d, 40.0, 12, 5, 0.8);
        assert_epochs_agree(&d, &[30.0, 60.0, 90.0]);
    }

    #[test]
    fn fine_grained_epochs_agree_with_batch() {
        // Many small epochs stress the settle/tail boundary more than the
        // eval loop's three: every fifth day is an epoch end.
        let mut d = fair_dataset(3);
        add_burst(&mut d, 40.0, 12, 6, 0.5);
        let ends: Vec<f64> = (1..=18).map(|i| f64::from(i) * 5.0).collect();
        assert_epochs_agree(&d, &ends);
    }

    #[test]
    fn state_survives_empty_epochs() {
        // Repeating the same horizon adds nothing new; the cache must
        // absorb zero entries and still reproduce the batch result.
        let mut d = fair_dataset(4);
        add_burst(&mut d, 40.0, 12, 5, 0.8);
        assert_epochs_agree(&d, &[60.0, 60.0, 60.0, 90.0]);
    }

    #[test]
    fn contract_violation_heals_via_rebuild() {
        // Feed epochs of dataset A, then switch the same OnlineState to
        // dataset B (different stream, same shape): the tail spot-check
        // must catch the swap and the result must equal B's batch run.
        let mut a = fair_dataset(5);
        add_burst(&mut a, 40.0, 10, 5, 0.6);
        let b = fair_dataset(6);
        let detector = JointDetector::default();
        let mut state = OnlineState::new();
        for &end in &[30.0, 60.0] {
            let window = TimeWindow::new(ts(0.0), ts(end)).unwrap();
            let prefix = a.prefix_view(window);
            detector.detect_all_online(&prefix, window, trust_fn, &mut state);
        }
        let window = TimeWindow::new(ts(0.0), ts(90.0)).unwrap();
        let prefix = b.prefix_view(window);
        let (batch_marks, batch_results) = detector.detect_all(&prefix, window, trust_fn);
        let (online_marks, online_results) =
            detector.detect_all_online(&prefix, window, trust_fn, &mut state);
        assert_eq!(batch_marks, online_marks);
        assert_eq!(batch_results, online_results);
    }

    #[test]
    fn shrinking_horizon_heals_via_rebuild() {
        // A horizon that moves backwards violates monotonicity; the
        // guards must rebuild rather than trust over-settled state.
        let mut d = fair_dataset(7);
        add_burst(&mut d, 40.0, 10, 5, 0.6);
        let detector = JointDetector::default();
        let mut state = OnlineState::new();
        for &end in &[90.0, 45.0, 90.0] {
            let window = TimeWindow::new(ts(0.0), ts(end)).unwrap();
            let prefix = d.prefix_view(window);
            let (batch_marks, _) = detector.detect_all(&prefix, window, trust_fn);
            let (online_marks, _) =
                detector.detect_all_online(&prefix, window, trust_fn, &mut state);
            assert_eq!(batch_marks, online_marks, "diverged at end={end}");
        }
    }

    #[test]
    fn disabled_detectors_agree_with_batch() {
        let mut d = fair_dataset(8);
        add_burst(&mut d, 40.0, 12, 5, 0.8);
        for ablated in [
            crate::AblatedDetector::MeanChange,
            crate::AblatedDetector::ArrivalRate,
            crate::AblatedDetector::Histogram,
            crate::AblatedDetector::ModelError,
        ] {
            let detector = JointDetector::new(DetectorConfig::default().without(ablated));
            let mut state = OnlineState::new();
            for &end in &[30.0, 60.0, 90.0] {
                let window = TimeWindow::new(ts(0.0), ts(end)).unwrap();
                let prefix = d.prefix_view(window);
                let (batch_marks, batch_results) = detector.detect_all(&prefix, window, trust_fn);
                let (online_marks, online_results) =
                    detector.detect_all_online(&prefix, window, trust_fn, &mut state);
                assert_eq!(batch_marks, online_marks, "{ablated:?} diverged");
                assert_eq!(batch_results, online_results, "{ablated:?} diverged");
            }
        }
    }

    #[test]
    fn snapshot_restore_round_trips_bit_exactly() {
        let mut d = fair_dataset(10);
        add_burst(&mut d, 40.0, 12, 5, 0.8);
        let detector = JointDetector::default();
        let mut state = OnlineState::new();
        for &end in &[30.0, 60.0] {
            let window = TimeWindow::new(ts(0.0), ts(end)).unwrap();
            let prefix = d.prefix_view(window);
            detector.detect_all_online(&prefix, window, trust_fn, &mut state);
        }
        let image = state.snapshot();
        let restored = OnlineState::restore(&image);
        // The image is a fixed point: capture(restore(x)) == x.
        assert_eq!(restored.snapshot(), image);
        assert_eq!(restored.products_tracked(), state.products_tracked());
    }

    #[test]
    fn restored_state_continues_identically() {
        // Epochs continued from a restored state must produce the same
        // bits as epochs continued from the live state — the property
        // crash recovery in rrs-serve stands on.
        let mut d = fair_dataset(11);
        add_burst(&mut d, 40.0, 12, 6, 0.5);
        let detector = JointDetector::default();
        let mut live = OnlineState::new();
        for &end in &[30.0, 60.0] {
            let window = TimeWindow::new(ts(0.0), ts(end)).unwrap();
            let prefix = d.prefix_view(window);
            detector.detect_all_online(&prefix, window, trust_fn, &mut live);
        }
        let mut restored = OnlineState::restore(&live.snapshot());
        for &end in &[75.0, 90.0] {
            let window = TimeWindow::new(ts(0.0), ts(end)).unwrap();
            let prefix = d.prefix_view(window);
            let (live_marks, live_results) =
                detector.detect_all_online(&prefix, window, trust_fn, &mut live);
            let (rest_marks, rest_results) =
                detector.detect_all_online(&prefix, window, trust_fn, &mut restored);
            assert_eq!(live_marks, rest_marks, "marks diverged at end={end}");
            assert_eq!(live_results, rest_results, "results diverged at end={end}");
        }
        // And the states themselves remain interchangeable afterwards.
        assert_eq!(live.snapshot(), restored.snapshot());
    }

    #[test]
    fn state_tracks_products() {
        let d = fair_dataset(9);
        let detector = JointDetector::default();
        let mut state = OnlineState::new();
        assert_eq!(state.products_tracked(), 0);
        let window = TimeWindow::new(ts(0.0), ts(30.0)).unwrap();
        let prefix = d.prefix_view(window);
        detector.detect_all_online(&prefix, window, trust_fn, &mut state);
        assert_eq!(state.products_tracked(), 2);
    }

    props! {
        #[test]
        fn online_epochs_equal_batch_oracle(
            seed in 0u64..48,
            burst_start in 31.0f64..55.0,
            burst_days in 0usize..12,
            burst_per_day in 3usize..7,
            burst_value in 0.0f64..2.5,
        ) {
            let mut d = fair_dataset(seed);
            if burst_days > 0 {
                add_burst(&mut d, burst_start, burst_days, burst_per_day, burst_value);
            }
            let detector = JointDetector::default();
            let mut state = OnlineState::new();
            for &end in &[30.0, 60.0, 90.0] {
                let window = TimeWindow::new(ts(0.0), ts(end)).unwrap();
                let prefix = d.prefix_view(window);
                let (batch_marks, batch_results) = detector.detect_all(&prefix, window, trust_fn);
                let (online_marks, online_results) =
                    detector.detect_all_online(&prefix, window, trust_fn, &mut state);
                prop_assert!(
                    batch_marks == online_marks,
                    "marks diverged from the batch oracle at end={end}"
                );
                prop_assert!(
                    batch_results == online_results,
                    "per-product results diverged from the batch oracle at end={end}"
                );
            }
        }
    }
}
