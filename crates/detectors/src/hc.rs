//! The histogram-change (HC) detector (paper Section IV-D).
//!
//! Collaborative unfair ratings pile probability mass at a value the fair
//! ratings rarely take, turning the in-window histogram bimodal. The
//! detector splits each window's values into two single-linkage clusters
//! and reports `HC(k) = min(n₁/n₂, n₂/n₁)`: near 0 for unimodal data
//! (the second "cluster" is a couple of stragglers), approaching 1 when
//! two genuinely balanced modes exist.
//!
//! One hardening beyond the paper's two-line description: the two clusters
//! must also be *separated* by a minimum value gap, otherwise any noisy
//! unimodal window can split into two balanced halves at a hairline gap
//! and fire a false alarm.

use crate::suspicion::{SuspicionKind, SuspiciousInterval};
use rrs_core::{TimeWindow, TimelineView, Timestamp};
use rrs_signal::curve::{Curve, CurvePoint};

/// Configuration of the HC detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HcConfig {
    /// Window length in ratings (paper: 40).
    pub window_ratings: usize,
    /// Step between window starts, in ratings.
    pub step: usize,
    /// HC ratio above which a window is suspicious.
    pub threshold: f64,
    /// Minimum value gap between the two clusters for the split to count
    /// as bimodality (rating units).
    pub min_cluster_gap: f64,
}

impl Default for HcConfig {
    fn default() -> Self {
        // A gap of 0.45 rating units separates a coordinated value
        // cluster (e.g. a run of identical extreme ratings) from the
        // continuum of noisy fair values; the ratio threshold of 0.25
        // flags a minority mode of ~10 ratings against a 30-rating
        // majority.
        HcConfig {
            window_ratings: 40,
            step: 5,
            threshold: 0.25,
            min_cluster_gap: 0.45,
        }
    }
}

/// The output of the HC detector on one product.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HcOutcome {
    /// The HC curve (one sample per evaluated window center).
    pub curve: Curve,
    /// Maximal runs of above-threshold windows, as time intervals.
    pub suspicious: Vec<SuspiciousInterval>,
}

impl HcOutcome {
    /// Returns `true` if any window crossed the threshold.
    #[must_use]
    pub fn is_suspicious(&self) -> bool {
        !self.suspicious.is_empty()
    }
}

/// Computes the HC ratio of one window of values.
///
/// Returns 0 when the window is too small to split, when one cluster is
/// empty, or when the clusters are not separated by `min_gap`.
///
/// Two-cluster single linkage in 1-D is exactly "cut the largest gap in
/// sorted order", so this sorts a copy of the window and scans the gaps
/// directly instead of running the general clustering machinery — same
/// result (the clustering path is kept as the oracle in this module's
/// property tests), a fraction of the allocations.
#[must_use]
pub fn hc_ratio(values: &[f64], min_gap: f64) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    hc_ratio_sorted(&sorted, min_gap)
}

/// [`hc_ratio`] on values already sorted by `total_cmp` — the online
/// path's sliding sorted window calls this directly and skips the sort.
pub(crate) fn hc_ratio_sorted(sorted: &[f64], min_gap: f64) -> f64 {
    if sorted.len() < 4 {
        return 0.0;
    }
    // Largest gap between sorted neighbors; first index wins ties, which
    // matches single_linkage_1d's (descending gap, ascending index) cut
    // ordering. total_cmp ranks a NaN gap above every finite one, exactly
    // like the clustering path, where a top-ranked NaN gap fails its
    // `> 0` cut test and leaves the window unsplit.
    let mut best_gap = f64::NEG_INFINITY;
    let mut cut = 0usize;
    for (i, pair) in sorted.windows(2).enumerate() {
        let gap = pair[1] - pair[0];
        if gap.total_cmp(&best_gap).is_gt() {
            best_gap = gap;
            cut = i;
        }
    }
    // No positive gap means one cluster; a sub-min_gap split is noise.
    if best_gap.is_nan() || best_gap <= 0.0 || best_gap < min_gap {
        return 0.0;
    }
    let n1 = (cut + 1) as f64;
    let n2 = (sorted.len() - cut - 1) as f64;
    (n1 / n2).min(n2 / n1)
}

/// Computes the HC curve point for the window starting at `start`
/// (requires `start + window_ratings ≤ values.len()`).
///
/// The point only reads the frozen prefix `values[start..start + w]` and
/// `times[center]`, so it is final as soon as the window fits — the
/// online path appends each new window's point exactly once.
pub(crate) fn window_point(
    values: &[f64],
    times: &[f64],
    start: usize,
    config: &HcConfig,
) -> CurvePoint {
    let center = start + config.window_ratings / 2;
    CurvePoint {
        index: center,
        time: times[center],
        value: hc_ratio(
            &values[start..start + config.window_ratings],
            config.min_cluster_gap,
        ),
    }
}

/// [`window_point`] from an already-sorted copy of the window's values.
///
/// `sorted` must hold exactly the multiset `values[start..start + w]` in
/// `total_cmp` order; the result is then bit-identical to
/// [`window_point`], which sorts the same multiset before the gap scan.
/// The online path maintains `sorted` as a sliding multiset so each
/// window costs O(w) insert/remove instead of an O(w log w) sort.
pub(crate) fn window_point_presorted(
    sorted: &[f64],
    times: &[f64],
    start: usize,
    config: &HcConfig,
) -> CurvePoint {
    let center = start + config.window_ratings / 2;
    CurvePoint {
        index: center,
        time: times[center],
        value: hc_ratio_sorted(sorted, config.min_cluster_gap),
    }
}

/// Merges consecutive above-threshold curve samples into suspicious
/// intervals, stretching each to cover the full windows involved (not
/// just centers) — shared verbatim by the batch and online paths.
pub(crate) fn suspicious_runs(
    curve: &Curve,
    times: &[f64],
    config: &HcConfig,
) -> Vec<SuspiciousInterval> {
    let w = config.window_ratings;
    let mut suspicious = Vec::new();
    let pts = curve.points();
    let mut run_start: Option<usize> = None;
    for (i, p) in pts.iter().enumerate() {
        let above = p.value >= config.threshold;
        match (above, run_start) {
            (true, None) => run_start = Some(i),
            (false, Some(s)) => {
                suspicious.push(run_interval(pts, s, i - 1, times, w, config.threshold));
                run_start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = run_start {
        suspicious.push(run_interval(
            pts,
            s,
            pts.len() - 1,
            times,
            w,
            config.threshold,
        ));
    }
    suspicious
}

/// Runs the HC detector over one product's timeline.
#[must_use]
pub fn detect<'a>(timeline: impl Into<TimelineView<'a>>, config: &HcConfig) -> HcOutcome {
    let timeline = timeline.into();
    let n = timeline.len();
    let w = config.window_ratings;
    if n < w || w == 0 {
        return HcOutcome::default();
    }
    // Contiguous column walks on the columnar engine.
    let values: Vec<f64> = timeline.values();
    let times: Vec<f64> = timeline.times().iter().map(|t| t.as_days()).collect();

    let signal_span = rrs_obs::trace::span("signal.hc");
    let step = config.step.max(1);
    let mut points = Vec::new();
    let mut start = 0usize;
    while start + w <= n {
        points.push(window_point(&values, &times, start, config));
        start += step;
    }
    let curve = Curve::new(points);
    drop(signal_span);
    let _detect_span = rrs_obs::trace::span("detect.hc");

    let suspicious = suspicious_runs(&curve, &times, config);
    HcOutcome { curve, suspicious }
}

fn run_interval(
    pts: &[CurvePoint],
    first: usize,
    last: usize,
    times: &[f64],
    window: usize,
    _threshold: f64,
) -> SuspiciousInterval {
    let n = times.len();
    let start_idx = pts[first].index.saturating_sub(window / 2);
    let end_idx = (pts[last].index + window / 2).min(n - 1);
    let strength = pts[first..=last]
        .iter()
        .map(|p| p.value)
        .fold(0.0f64, f64::max);
    let window = TimeWindow::ordered(
        Timestamp::saturating(times[start_idx]),
        Timestamp::saturating(times[end_idx] + 1e-9),
    );
    SuspiciousInterval::new(window, SuspicionKind::Histogram, strength)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::rng::RrsRng;
    use rrs_core::rng::Xoshiro256pp;
    use rrs_core::{
        prop_assert, props, ProductId, RaterId, Rating, RatingDataset, RatingSource, RatingValue,
    };

    fn dataset(values_by_day: impl Iterator<Item = (f64, f64)>) -> RatingDataset {
        let mut d = RatingDataset::new();
        for (i, (t, v)) in values_by_day.enumerate() {
            d.insert(
                Rating::new(
                    RaterId::new(i as u32),
                    ProductId::new(0),
                    Timestamp::new(t).unwrap(),
                    RatingValue::new_clamped(v),
                ),
                RatingSource::Fair,
            );
        }
        d
    }

    #[test]
    fn hc_ratio_unimodal_is_low() {
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let values: Vec<f64> = (0..40).map(|_| 4.0 + rng.gen_range(-0.6..0.6)).collect();
        assert_eq!(hc_ratio(&values, 0.8), 0.0);
    }

    #[test]
    fn hc_ratio_balanced_bimodal_is_high() {
        let mut values = vec![4.0; 20];
        values.extend(vec![1.0; 20]);
        let r = hc_ratio(&values, 0.8);
        assert!((r - 1.0).abs() < 1e-12, "got {r}");
    }

    #[test]
    fn hc_ratio_imbalanced_bimodal_is_moderate() {
        let mut values = vec![4.0; 30];
        values.extend(vec![1.0; 10]);
        let r = hc_ratio(&values, 0.8);
        assert!((r - 1.0 / 3.0).abs() < 1e-12, "got {r}");
    }

    #[test]
    fn hc_ratio_tiny_window_is_zero() {
        assert_eq!(hc_ratio(&[1.0, 4.0], 0.5), 0.0);
    }

    #[test]
    fn fair_stream_quiet() {
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let d = dataset((0..300).map(|i| (f64::from(i) * 0.25, 4.0 + rng.gen_range(-0.7..0.7))));
        let out = detect(d.product(ProductId::new(0)).unwrap(), &HcConfig::default());
        assert!(!out.is_suspicious(), "{:?}", out.suspicious);
    }

    #[test]
    fn injected_mode_is_flagged_in_place() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        // 300 fair ratings at 4.0; ratings 120..170 replaced by a 1.0 mode.
        let d = dataset((0..300).map(|i| {
            let v = if (120..170).contains(&i) {
                1.0 + rng.gen_range(-0.2..0.2)
            } else {
                4.0 + rng.gen_range(-0.7..0.7)
            };
            (f64::from(i) * 0.25, v)
        }));
        let out = detect(d.product(ProductId::new(0)).unwrap(), &HcConfig::default());
        assert!(out.is_suspicious());
        // Attack spans times 30..42.5; the flagged interval must overlap.
        let attack =
            TimeWindow::new(Timestamp::new(30.0).unwrap(), Timestamp::new(42.5).unwrap()).unwrap();
        assert!(out.suspicious.iter().any(|s| s.overlaps(attack)));
    }

    #[test]
    fn short_stream_is_silent() {
        let d = dataset((0..10).map(|i| (f64::from(i), 4.0)));
        let out = detect(d.product(ProductId::new(0)).unwrap(), &HcConfig::default());
        assert!(out.curve.is_empty());
    }

    /// The clustering-based reference implementation `hc_ratio` replaced:
    /// full single-linkage labels, sizes, and a member scan for the gap.
    fn hc_ratio_via_clustering(values: &[f64], min_gap: f64) -> f64 {
        use rrs_signal::cluster::{cluster_sizes, single_linkage_1d};
        if values.len() < 4 {
            return 0.0;
        }
        let labels = single_linkage_1d(values, 2);
        let sizes = cluster_sizes(&labels);
        if sizes.len() < 2 || sizes[0] == 0 || sizes[1] == 0 {
            return 0.0;
        }
        let max0 = values
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l == 0)
            .map(|(v, _)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        let min1 = values
            .iter()
            .zip(&labels)
            .filter(|(_, &l)| l == 1)
            .map(|(v, _)| *v)
            .fold(f64::INFINITY, f64::min);
        if min1 - max0 < min_gap {
            return 0.0;
        }
        let (n1, n2) = (sizes[0] as f64, sizes[1] as f64);
        (n1 / n2).min(n2 / n1)
    }

    props! {
        #[test]
        fn gap_scan_matches_clustering_oracle(
            values in rrs_core::check::vec_of(-1.0f64..6.0, 0..60),
            min_gap in 0.0f64..1.5,
        ) {
            let fast = hc_ratio(&values, min_gap);
            let slow = hc_ratio_via_clustering(&values, min_gap);
            prop_assert!(
                fast.to_bits() == slow.to_bits(),
                "gap-scan hc_ratio {fast} != clustering oracle {slow} on {values:?}"
            );
        }

        #[test]
        fn duplicate_heavy_windows_match_clustering_oracle(
            raw in rrs_core::check::vec_of(0u8..8, 4..50),
            min_gap in 0.0f64..1.5,
        ) {
            // Quantized values force ties in both the values and the gaps.
            let values: Vec<f64> = raw.iter().map(|&v| f64::from(v) * 0.7).collect();
            let fast = hc_ratio(&values, min_gap);
            let slow = hc_ratio_via_clustering(&values, min_gap);
            prop_assert!(
                fast.to_bits() == slow.to_bits(),
                "gap-scan hc_ratio {fast} != clustering oracle {slow} on {values:?}"
            );
        }
    }
}
