use crate::{ArcConfig, HcConfig, McConfig, MeConfig};

/// Combined configuration of the four detectors and the integration logic.
///
/// Defaults match the paper's Rating Challenge parameters: MC and
/// H-ARC/L-ARC windows of 30 days, HC and ME windows of 40 ratings.
/// The `enable_*` switches exist for the ablation experiments — disabling
/// a detector removes it from both detection paths.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DetectorConfig {
    /// Mean-change detector settings.
    pub mc: McConfig,
    /// Arrival-rate detector settings (shared by H-ARC and L-ARC).
    pub arc: ArcConfig,
    /// Histogram-change detector settings.
    pub hc: HcConfig,
    /// Model-error detector settings.
    pub me: MeConfig,
    /// Detector enable switches.
    pub enabled: EnabledDetectors,
}

/// Per-detector enable switches (all on by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnabledDetectors {
    /// Mean-change detector.
    pub mc: bool,
    /// H-ARC and L-ARC detectors.
    pub arc: bool,
    /// Histogram-change detector.
    pub hc: bool,
    /// Model-error detector.
    pub me: bool,
}

impl Default for EnabledDetectors {
    fn default() -> Self {
        EnabledDetectors {
            mc: true,
            arc: true,
            hc: true,
            me: true,
        }
    }
}

impl DetectorConfig {
    /// The paper's Rating Challenge configuration (same as `Default`).
    #[must_use]
    pub fn paper() -> Self {
        DetectorConfig::default()
    }

    /// Returns a copy with one detector disabled — convenience for the
    /// ablation benches.
    #[must_use]
    pub fn without(mut self, detector: AblatedDetector) -> Self {
        match detector {
            AblatedDetector::MeanChange => self.enabled.mc = false,
            AblatedDetector::ArrivalRate => self.enabled.arc = false,
            AblatedDetector::Histogram => self.enabled.hc = false,
            AblatedDetector::ModelError => self.enabled.me = false,
        }
        self
    }
}

/// Which detector to ablate in [`DetectorConfig::without`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AblatedDetector {
    /// Disable the MC detector.
    MeanChange,
    /// Disable H-ARC/L-ARC.
    ArrivalRate,
    /// Disable the HC detector.
    Histogram,
    /// Disable the ME detector.
    ModelError,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_windows() {
        let c = DetectorConfig::paper();
        assert_eq!(c.mc.half_window_days, 15.0); // 30-day window
        assert_eq!(c.arc.half_window_days, 15); // 30-day window
        assert_eq!(c.hc.window_ratings, 40);
        assert_eq!(c.me.window_ratings, 40);
        assert!(c.enabled.mc && c.enabled.arc && c.enabled.hc && c.enabled.me);
    }

    #[test]
    fn without_disables_one_detector() {
        let c = DetectorConfig::paper().without(AblatedDetector::Histogram);
        assert!(!c.enabled.hc);
        assert!(c.enabled.mc && c.enabled.arc && c.enabled.me);
    }
}
