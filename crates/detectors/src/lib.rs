//! The unfair-rating detectors of the P-scheme.
//!
//! Four detectors analyze each product's rating stream independently
//! (paper Section IV):
//!
//! * [`mc`] — **mean change**: a Gaussian GLRT slid over the stream
//!   produces the MC indicator curve; its peaks segment the stream and
//!   segments with an abnormal mean (absolutely large, or moderately large
//!   but given by low-trust raters) are MC-suspicious.
//! * [`arc`] — **arrival-rate change**: daily rating counts are modeled
//!   Poisson; a GLRT produces the ARC curve. The H-ARC and L-ARC variants
//!   restrict counting to high- and low-valued ratings.
//! * [`hc`] — **histogram change**: rating values in a window are split
//!   into two single-linkage clusters; balanced clusters (HC ratio near 1)
//!   reveal a bimodal histogram.
//! * [`me`] — **model error**: an AR model fitted by the covariance method
//!   predicts poorly on honest white-noise-like ratings and well on
//!   collusive structure; low normalized error is suspicious.
//!
//! [`integrate`] combines them along the two detection paths of the
//! paper's Figure 1 and emits per-rating suspicion marks.
//!
//! [`online`] provides the incremental epoch loop: a rolling
//! [`OnlineState`] lets [`JointDetector::detect_all_online`] consume only
//! the ratings that arrived since the previous epoch while producing
//! output identical to the batch path (proven by oracle property tests).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arc;
mod config;
pub mod hc;
pub mod integrate;
pub mod mc;
pub mod me;
pub mod online;
mod suspicion;

pub use arc::{ArcConfig, ArcOutcome, ArcVariant};
pub use config::{AblatedDetector, DetectorConfig, EnabledDetectors};
pub use hc::{HcConfig, HcOutcome};
pub use integrate::{Band, DetectionResult, DetectorVerdictSummary, JointDetector, PathHit};
pub use mc::{McConfig, McOutcome};
pub use me::{MeConfig, MeOutcome};
pub use online::{
    ArcBandSnapshot, CurveCursorSnapshot, CurvePointSnapshot, OnlineSnapshot, OnlineState,
    ProductSnapshot,
};
pub use suspicion::{SuspicionKind, SuspiciousInterval};
