//! The mean-change (MC) detector (paper Section IV-B).
//!
//! A sliding two-sided window computes the GLRT indicator
//! `MC(k) = W·(Â₁ − Â₂)²` at every rating. Peaks of the indicator curve
//! locate candidate change points; the stream is cut at the peaks and each
//! segment's mean is compared against the overall mean. A segment is
//! MC-suspicious when the deviation is large outright, or moderate *and*
//! contributed by raters whose average trust falls below the population's
//! (the paper's two-threshold rule).

use crate::suspicion::{SuspicionKind, SuspiciousInterval};
use rrs_core::stream::split_at_peaks;
use rrs_core::{RaterId, TimeWindow, TimelineView, Timestamp};
use rrs_signal::curve::{Curve, CurvePoint, Peak, UShape};
use std::ops::Range;

/// Configuration of the MC detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Half-width of the sliding window in days (paper: 30-day window,
    /// i.e. 15 days per half).
    pub half_window_days: f64,
    /// Minimum ratings required in each half for a test to run.
    pub min_half_ratings: usize,
    /// GLRT decision factor γ: the peak threshold is `γ · 2σ̂²` where σ̂²
    /// is the stream's value variance, so peaks correspond to
    /// `2 ln L_G(x) > γ` (paper Eq. 1).
    pub glrt_gamma: f64,
    /// Minimum curve-sample separation between retained peaks.
    pub peak_separation: usize,
    /// Valley-to-peak ratio below which two peaks frame a U-shape.
    pub valley_ratio: f64,
    /// `threshold1`: a segment mean deviating this much from the overall
    /// mean is suspicious outright (rating units).
    pub threshold1: f64,
    /// `threshold2 < threshold1`: a moderate deviation is suspicious when
    /// the segment's raters are comparatively untrusted.
    pub threshold2: f64,
    /// A segment is "less trustworthy" when its average rater trust over
    /// the stream average falls below this ratio.
    pub trust_ratio: f64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            half_window_days: 15.0,
            min_half_ratings: 4,
            glrt_gamma: 8.0,
            peak_separation: 8,
            valley_ratio: 0.5,
            threshold1: 0.8,
            threshold2: 0.35,
            trust_ratio: 0.95,
        }
    }
}

/// One segment of the stream between MC peaks, with its verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct McSegment {
    /// Rating-index range of the segment.
    pub index_range: Range<usize>,
    /// Time window covered by the segment.
    pub window: TimeWindow,
    /// Segment mean `B_j`.
    pub mean: f64,
    /// `|B_j − B_avg|`.
    pub mean_deviation: f64,
    /// Average trust of the raters in the segment.
    pub avg_trust: f64,
    /// Whether the segment was flagged MC-suspicious.
    pub flagged: bool,
}

/// The full output of the MC detector on one product.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct McOutcome {
    /// The MC indicator curve.
    pub curve: Curve,
    /// Retained peaks of the curve.
    pub peaks: Vec<Peak>,
    /// U-shapes (peak pairs framing a valley).
    pub u_shapes: Vec<UShape>,
    /// Per-segment verdicts.
    pub segments: Vec<McSegment>,
    /// Flagged segments as suspicious intervals.
    pub suspicious: Vec<SuspiciousInterval>,
}

impl McOutcome {
    /// Returns `true` if any segment was flagged.
    #[must_use]
    pub fn is_suspicious(&self) -> bool {
        !self.suspicious.is_empty()
    }
}

/// Computes the MC indicator point at rating `k`: `X₁` spans the ratings
/// in `[t_k − h, t_k)` and `X₂` spans `[t_k, t_k + h)`. Returns `None`
/// when either half holds fewer than `min_half_ratings` ratings.
///
/// The point is *final* once the horizon has passed `t_k + h`: every
/// later arrival carries a time at or beyond the horizon end, so both
/// `partition_point` results and the prefix-sum differences are frozen.
/// The online path caches settled points on exactly this argument.
pub(crate) fn indicator_point(
    times: &[f64],
    prefix: &[f64],
    k: usize,
    config: &McConfig,
) -> Option<CurvePoint> {
    let t = times[k];
    let lo = times.partition_point(|&x| x < t - config.half_window_days);
    let hi = times.partition_point(|&x| x < t + config.half_window_days);
    indicator_point_with_bounds(times, prefix, k, lo, hi, config)
}

/// [`indicator_point`] with the window bounds already resolved: `lo` and
/// `hi` must equal the two `partition_point` results above. The bounds
/// are integers, so any method that produces the same indices — the
/// online path advances them as monotone two-pointers across a scan —
/// yields a bit-identical point.
pub(crate) fn indicator_point_with_bounds(
    times: &[f64],
    prefix: &[f64],
    k: usize,
    lo: usize,
    hi: usize,
    config: &McConfig,
) -> Option<CurvePoint> {
    let t = times[k];
    let left = lo..k;
    let right = k..hi;
    if left.len() < config.min_half_ratings
        || right.len() < config.min_half_ratings
        || left.is_empty()
        || right.is_empty()
    {
        return None;
    }
    let a1 = (prefix[left.end] - prefix[left.start]) / left.len() as f64;
    let a2 = (prefix[right.end] - prefix[right.start]) / right.len() as f64;
    let n1 = left.len() as f64;
    let n2 = right.len() as f64;
    let w_eff = 2.0 * n1 * n2 / (n1 + n2);
    Some(CurvePoint {
        index: k,
        time: t,
        value: w_eff * (a1 - a2).powi(2),
    })
}

/// Runs the MC detector over one product's timeline (accepts
/// `&ProductTimeline` or a borrowed [`TimelineView`]).
///
/// `trust` supplies the current trust value of each rater (use
/// `|_| 0.5` when no trust information exists yet).
#[must_use]
pub fn detect<'a, F>(
    timeline: impl Into<TimelineView<'a>>,
    config: &McConfig,
    trust: F,
) -> McOutcome
where
    F: Fn(RaterId) -> f64,
{
    let timeline = timeline.into();
    let n = timeline.len();
    if n < 2 * config.min_half_ratings {
        return McOutcome::default();
    }
    // Contiguous column walks on the columnar engine.
    let values: Vec<f64> = timeline.values();
    let times: Vec<f64> = timeline.times().iter().map(|t| t.as_days()).collect();

    // Prefix sums make every windowed mean O(1).
    let mut prefix = vec![0.0f64; n + 1];
    for (i, &v) in values.iter().enumerate() {
        prefix[i + 1] = prefix[i] + v;
    }

    // Indicator curve: for rating k, X1 = ratings in [t_k − h, t_k),
    // X2 = [t_k, t_k + h).
    let signal_span = rrs_obs::trace::span("signal.mc");
    let mut points = Vec::with_capacity(n);
    for k in 0..n {
        if let Some(p) = indicator_point(&times, &prefix, k, config) {
            points.push(p);
        }
    }
    let curve = Curve::new(points);

    let sigma2 = rrs_signal::stats::variance(&values)
        .unwrap_or(0.0)
        .max(1e-6);
    let peak_threshold = config.glrt_gamma * 2.0 * sigma2;
    let peaks = curve.find_peaks(peak_threshold, config.peak_separation);
    let u_shapes = curve.u_shapes_between(&peaks, config.valley_ratio);
    drop(signal_span);

    let overall_mean = rrs_signal::stats::median(&values).expect("n > 0");
    judge_segments(
        timeline,
        &times,
        &prefix,
        curve,
        peaks,
        u_shapes,
        overall_mean,
        config,
        trust,
    )
}

/// Segments the stream at the peaks and judges each segment — shared
/// verbatim by the batch and online paths so their verdicts are
/// bit-identical. `overall_mean` is the stream's reference level (the
/// *median* rating value; see the comment inside on why not the mean).
#[allow(clippy::too_many_arguments)]
pub(crate) fn judge_segments<F>(
    timeline: TimelineView<'_>,
    times: &[f64],
    prefix: &[f64],
    curve: Curve,
    peaks: Vec<Peak>,
    u_shapes: Vec<UShape>,
    overall_mean: f64,
    config: &McConfig,
    trust: F,
) -> McOutcome
where
    F: Fn(RaterId) -> f64,
{
    let _detect_span = rrs_obs::trace::span("detect.mc");
    let n = timeline.len();
    let range_mean = |r: Range<usize>| -> Option<f64> {
        if r.is_empty() {
            None
        } else {
            Some((prefix[r.end] - prefix[r.start]) / r.len() as f64)
        }
    };

    // Segment the stream at the peaks and judge each segment. The
    // reference level `B_avg` is the *median* rating value rather than
    // the mean: a long attack drags the mean toward itself, which would
    // make the fair segments look deviant and the attacked segment look
    // normal (the reference the paper uses is safe only while unfair
    // ratings are a small minority of the stream).
    let peak_indices = Curve::peak_stream_indices(&peaks);
    let trust_values: Vec<f64> = (0..n).map(|i| trust(timeline.rater_at(i))).collect();
    let overall_trust: f64 = trust_values.iter().sum::<f64>() / n as f64;

    let mut segments = Vec::new();
    let mut suspicious = Vec::new();
    let end_time = Timestamp::saturating(times[n - 1] + 1e-9);
    for index_range in split_at_peaks(n, &peak_indices) {
        let mean = range_mean(index_range.clone()).expect("segments are non-empty");
        let mean_deviation = (mean - overall_mean).abs();
        let avg_trust: f64 =
            trust_values[index_range.clone()].iter().sum::<f64>() / index_range.len() as f64;
        let less_trusted = overall_trust > 0.0 && avg_trust / overall_trust < config.trust_ratio;
        let flagged = mean_deviation > config.threshold1
            || (mean_deviation > config.threshold2 && less_trusted);
        let start = Timestamp::saturating(times[index_range.start]);
        let end = if index_range.end < n {
            Timestamp::saturating(times[index_range.end])
        } else {
            end_time
        };
        let window = TimeWindow::ordered(start, end);
        if flagged {
            suspicious.push(SuspiciousInterval::new(
                window,
                SuspicionKind::MeanChange,
                mean_deviation,
            ));
        }
        segments.push(McSegment {
            index_range,
            window,
            mean,
            mean_deviation,
            avg_trust,
            flagged,
        });
    }

    McOutcome {
        curve,
        peaks,
        u_shapes,
        segments,
        suspicious,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rrs_core::rng::RrsRng;
    use rrs_core::rng::Xoshiro256pp;
    use rrs_core::{ProductId, ProductTimeline, Rating, RatingDataset, RatingSource, RatingValue};

    /// Fair stream: `per_day` ratings/day for `days` days at mean 4.0 ± noise.
    fn fair_timeline(days: usize, per_day: usize, seed: u64) -> RatingDataset {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut d = RatingDataset::new();
        let mut rater = 0u32;
        for day in 0..days {
            for slot in 0..per_day {
                let t = day as f64 + slot as f64 / per_day as f64;
                let v = (4.0 + rng.gen_range(-0.8f64..0.8)).clamp(0.0, 5.0);
                d.insert(
                    Rating::new(
                        RaterId::new(rater),
                        ProductId::new(0),
                        Timestamp::new(t).unwrap(),
                        RatingValue::new_clamped(v),
                    ),
                    RatingSource::Fair,
                );
                rater += 1;
            }
        }
        d
    }

    fn with_attack(
        mut d: RatingDataset,
        from: f64,
        to: f64,
        per_day: usize,
        value: f64,
    ) -> RatingDataset {
        let mut rater = 10_000u32;
        let mut day = from;
        while day < to {
            for slot in 0..per_day {
                d.insert(
                    Rating::new(
                        RaterId::new(rater),
                        ProductId::new(0),
                        Timestamp::new(day + slot as f64 / per_day as f64).unwrap(),
                        RatingValue::new_clamped(value),
                    ),
                    RatingSource::Unfair,
                );
                rater += 1;
            }
            day += 1.0;
        }
        d
    }

    fn timeline(d: &RatingDataset) -> TimelineView<'_> {
        d.product(ProductId::new(0)).unwrap()
    }

    #[test]
    fn empty_stream_yields_default() {
        let d = RatingDataset::new();
        let tl = ProductTimeline::default();
        let out = detect(&tl, &McConfig::default(), |_| 0.5);
        assert!(out.curve.is_empty());
        assert!(!out.is_suspicious());
        drop(d);
    }

    #[test]
    fn fair_stream_not_flagged() {
        let d = fair_timeline(90, 4, 1);
        let out = detect(timeline(&d), &McConfig::default(), |_| 0.5);
        assert!(
            !out.is_suspicious(),
            "fair data flagged: {:?}",
            out.suspicious
        );
    }

    #[test]
    fn strong_downgrade_attack_is_flagged() {
        let d = fair_timeline(90, 4, 2);
        let d = with_attack(d, 40.0, 55.0, 4, 0.5);
        let out = detect(timeline(&d), &McConfig::default(), |_| 0.5);
        assert!(out.is_suspicious(), "attack not flagged");
        // The flagged interval should overlap the attack window.
        let attack =
            TimeWindow::new(Timestamp::new(40.0).unwrap(), Timestamp::new(55.0).unwrap()).unwrap();
        assert!(
            out.suspicious.iter().any(|s| s.overlaps(attack)),
            "flagged intervals {:?} miss the attack",
            out.suspicious
        );
    }

    #[test]
    fn strong_attack_produces_u_shape() {
        let d = fair_timeline(90, 4, 3);
        let d = with_attack(d, 40.0, 55.0, 6, 0.5);
        let out = detect(timeline(&d), &McConfig::default(), |_| 0.5);
        assert!(
            !out.u_shapes.is_empty(),
            "expected a U-shape framing the attack; peaks: {:?}",
            out.peaks.len()
        );
        // The indicator dips to ~0 at the attack midpoint (both window
        // halves see the same fair/unfair mix), so the U-shape's peaks sit
        // just inside the attack boundaries and frame its center.
        let (lo, hi) = out.u_shapes[0].time_range();
        assert!(
            lo >= 35.0 && hi <= 60.0 && lo < 47.5 && hi > 47.5,
            "u-shape [{lo}, {hi}] does not frame the attack center"
        );
    }

    #[test]
    fn moderate_attack_flagged_only_with_low_trust() {
        // A moderate shift that stays under threshold1.
        let d = fair_timeline(90, 4, 4);
        let d = with_attack(d, 40.0, 55.0, 4, 3.2);
        let cfg = McConfig {
            threshold1: 10.0, // disable the unconditional rule
            threshold2: 0.15,
            glrt_gamma: 4.0,
            ..McConfig::default()
        };
        // With neutral trust everywhere, nothing can satisfy the
        // trust-ratio condition.
        let neutral = detect(timeline(&d), &cfg, |_| 0.5);
        assert!(!neutral.is_suspicious());
        // With attackers (rater ids >= 10_000) at low trust, the moderate
        // deviation becomes suspicious.
        let informed = detect(timeline(&d), &cfg, |r| {
            if r.value() >= 10_000 {
                0.1
            } else {
                0.9
            }
        });
        assert!(informed.is_suspicious(), "trust-assisted rule never fired");
    }

    #[test]
    fn segments_partition_stream() {
        let d = fair_timeline(60, 3, 5);
        let out = detect(timeline(&d), &McConfig::default(), |_| 0.5);
        let n = timeline(&d).len();
        assert_eq!(out.segments.first().unwrap().index_range.start, 0);
        assert_eq!(out.segments.last().unwrap().index_range.end, n);
        for pair in out.segments.windows(2) {
            assert_eq!(pair[0].index_range.end, pair[1].index_range.start);
        }
    }

    #[test]
    fn short_stream_is_silent() {
        let d = fair_timeline(2, 1, 6);
        let out = detect(timeline(&d), &McConfig::default(), |_| 0.5);
        assert!(out.curve.is_empty());
        assert!(out.peaks.is_empty());
    }
}
