//! # rrs — Reliable Rating Systems
//!
//! A faithful, from-scratch reproduction of *“Modeling Attack Behaviors in
//! Rating Systems”* (Feng, Yang, Sun, Dai — ICDCS 2008): attack behavior
//! models, a comprehensive unfair-rating generator, and the signal-based
//! reliable rating-aggregation system (P-scheme) the paper's Rating
//! Challenge was built on, plus the SA and BF baseline defenses.
//!
//! This crate is a facade that re-exports the workspace members:
//!
//! * [`core`] — ratings, datasets, time, the MP metric, scheme traits.
//! * [`signal`] — GLRTs, AR modeling, clustering, special functions.
//! * [`detectors`] — the four unfair-rating detectors and their joint
//!   integration (paper Fig. 1).
//! * [`trust`] — beta-function trust models (paper Procedure 1).
//! * [`aggregation`] — P-scheme, SA-scheme, BF-scheme.
//! * [`attack`] — the attack generator (paper Fig. 8), Procedure 2 region
//!   search, Procedure 3 correlation mapping, and the strategy library.
//! * [`challenge`] — the Rating Challenge simulator and fair-data
//!   generator.
//! * [`eval`] — experiment harness reproducing every figure of the paper.
//! * [`obs`] — zero-dependency tracing, metrics, and decision traces for
//!   the detection pipeline (`rrs trace`, `RRS_TRACE=1`).
//! * [`serve`] — the serving front end: a zero-dependency HTTP/1.1 API
//!   with a durable write-ahead log and checkpoint/restore
//!   (`rrs serve`).
//!
//! # Quickstart
//!
//! ```
//! use rrs::challenge::{ChallengeConfig, RatingChallenge};
//! use rrs::aggregation::PScheme;
//!
//! let challenge = RatingChallenge::generate(&ChallengeConfig::small(), 7);
//! let scheme = PScheme::default();
//! let clean_mp = challenge
//!     .score_dataset(&scheme, challenge.fair_dataset())
//!     .expect("fair dataset is non-empty");
//! assert_eq!(clean_mp.total(), 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use rrs_aggregation as aggregation;
pub use rrs_attack as attack;
pub use rrs_challenge as challenge;
pub use rrs_core as core;
pub use rrs_detectors as detectors;
pub use rrs_eval as eval;
pub use rrs_obs as obs;
pub use rrs_serve as serve;
pub use rrs_signal as signal;
pub use rrs_trust as trust;

pub use rrs_core::{
    AggregationScheme, CoreError, Days, EvalContext, MpParams, MpReport, ProductId, RaterId,
    Rating, RatingDataset, RatingId, RatingSource, RatingValue, SchemeOutcome, TimeWindow,
    Timestamp,
};
