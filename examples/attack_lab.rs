//! Attack lab: the paper's Fig.-8 generator with its learning loop
//! closed — the Procedure-2 heuristic search zooms in on the strongest
//! region of the variance–bias plane against a chosen defense.
//!
//! ```text
//! cargo run --release --example attack_lab [p|sa|bf]
//! ```

use rrs::aggregation::{BfScheme, PScheme, SaScheme};
use rrs::attack::AdaptiveAttacker;
use rrs::challenge::{ChallengeConfig, RatingChallenge, ScoringSession};
use rrs::AggregationScheme;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "p".into());
    let p = PScheme::new();
    let sa = SaScheme::new();
    let bf = BfScheme::new();
    let scheme: &dyn AggregationScheme = match which.as_str() {
        "sa" => &sa,
        "bf" => &bf,
        _ => &p,
    };

    let challenge = RatingChallenge::generate(&ChallengeConfig::paper(), 7);
    let session = ScoringSession::new(&challenge, scheme);
    let ctx = challenge.attack_context();
    println!(
        "adaptive attacker learning the variance-bias plane against {} ...\n",
        scheme.name()
    );

    let attacker = AdaptiveAttacker::new();
    let outcome = attacker.optimize(&ctx, |seq| session.score(seq).total());

    for (i, round) in outcome.search.rounds.iter().enumerate() {
        println!(
            "round {i}: area bias [{:.2}, {:.2}] x std [{:.2}, {:.2}]",
            round.area.bias.0, round.area.bias.1, round.area.std_dev.0, round.area.std_dev.1
        );
        for (sub, mp) in &round.probes {
            let (b, s) = sub.center();
            println!("  probe ({b:>6.2}, {s:>5.2})  max MP {mp:.4}");
        }
    }
    let (bias, std) = outcome.search.final_area.center();
    println!(
        "\nconverged: bias {bias:.2}, std {std:.2}; best MP {:.4} against {} using \"{}\"",
        outcome.best_effect,
        scheme.name(),
        outcome.best_attack.label,
    );
    println!("(the paper's Fig. 5 run against its P-scheme ended near (-2.3, 1.6))");
}
