//! Trust dynamics: watch Procedure 1 separate honest raters from
//! dishonest ones, month by month.
//!
//! ```text
//! cargo run --release --example trust_dynamics
//! ```

use rrs::attack::AttackStrategy;
use rrs::challenge::{ChallengeConfig, RatingChallenge};
use rrs::core::{Days, EvalContext, TimeWindow};
use rrs::detectors::JointDetector;
use rrs::trust::TrustManager;
use rrs_core::rng::Xoshiro256pp;

fn main() {
    let challenge = RatingChallenge::generate(&ChallengeConfig::paper(), 3);
    let ctx = challenge.attack_context();
    let mut rng = Xoshiro256pp::seed_from_u64(9);
    let attack = AttackStrategy::Burst {
        bias: 3.2,
        std_dev: 0.4,
        start_day: 10.0,
        duration_days: 14.0,
    }
    .build(&ctx, &mut rng);
    let attacked = challenge.attacked_dataset(&attack);

    let eval_ctx = EvalContext::new(challenge.horizon(), Days::new(30.0).expect("constant"));
    let detector = JointDetector::default();
    let mut trust = TrustManager::new();

    println!("epoch | avg honest trust | avg attacker trust | suspicious marks");
    for (epoch, period) in eval_ctx.periods().iter().enumerate() {
        let prefix_window =
            TimeWindow::new(eval_ctx.horizon().start(), period.end()).expect("inside horizon");
        let prefix = attacked.restricted(prefix_window);
        let snapshot = trust.snapshot();
        let (marks, _) = detector.detect_all(&prefix, prefix_window, |r| {
            snapshot.get(&r).copied().unwrap_or(0.5)
        });
        let update = trust.update_epoch(&prefix, *period, &marks);

        let mut honest = Vec::new();
        let mut attackers = Vec::new();
        for (rater, value) in trust.snapshot() {
            if rater.value() >= 1_000_000 {
                attackers.push(value);
            } else {
                honest.push(value);
            }
        }
        let avg = |v: &[f64]| {
            if v.is_empty() {
                0.5
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        println!(
            "{epoch:>5} | {:>16.3} | {:>18.3} | {} marks on {} ratings",
            avg(&honest),
            avg(&attackers),
            update.suspicious,
            update.ratings,
        );
    }
    println!("\nhonest raters drift up with every clean epoch; the attackers'");
    println!("burst is marked in its epoch and their beta trust collapses,");
    println!("which zeroes their weight in Eq. 7 and trips the rating filter.");
}
