//! Decision-trace probe: run an attacked challenge through the P-scheme
//! with trace collection on and explain, period by period, why the
//! pipeline marked (or spared) each product — detector statistics vs
//! thresholds, the joint-decision path taken, and how the implicated
//! raters' beta-trust records moved.
//!
//! This replaces the old ad-hoc `debug_trace` binary with the structured
//! decision-trace layer: the same questions ("where does MP leak?",
//! "which detector carried the verdict?") are now answered from
//! [`rrs::obs::decision::DecisionRecord`]s instead of scattered prints.
//!
//! ```text
//! cargo run --release --example trace_probe
//! ```

use rrs::aggregation::PScheme;
use rrs::attack::AttackStrategy;
use rrs::challenge::{ChallengeConfig, RatingChallenge};
use rrs::core::{AggregationScheme, GroundTruth};
use rrs_core::rng::Xoshiro256pp;

fn main() {
    let challenge = RatingChallenge::generate(&ChallengeConfig::small(), 7);
    let mut rng = Xoshiro256pp::seed_from_u64(7);
    let attack = AttackStrategy::NaiveExtreme {
        start_day: 35.0,
        duration_days: 10.0,
    }
    .build(&challenge.attack_context(), &mut rng);
    let attacked = challenge.attacked_dataset(&attack);
    let ctx = challenge.eval_context();
    println!(
        "attack: {} unfair ratings from {} raters",
        attack.len(),
        challenge.raters().len()
    );

    // Collect the full decision trace of one evaluation.
    rrs::obs::enable();
    rrs::obs::decision::drain();
    let scheme = PScheme::new();
    let outcome = scheme.evaluate(&attacked, &ctx);
    let records = rrs::obs::decision::drain();
    rrs::obs::disable();

    for r in &records {
        println!(
            "\nproduct {} | days {:.0}..{:.0} | {} marked",
            r.product,
            r.start_day,
            r.end_day,
            r.suspicious.len()
        );
        for d in &r.detectors {
            println!(
                "  {:<6} stat {:>8.3} vs threshold {:>6.3}  {}",
                d.name,
                d.statistic,
                d.threshold,
                if d.fired { "FIRED" } else { "quiet" }
            );
        }
        for p in &r.paths {
            println!(
                "  path {} ({} band) marked {} ratings in days {:.1}..{:.1}",
                p.path, p.band, p.marked, p.start_day, p.end_day
            );
        }
        for t in &r.trust {
            println!(
                "  rater {}: trust {:.3} -> {:.3}  (alpha {:.1} -> {:.1}, beta {:.1} -> {:.1})",
                t.rater,
                t.trust_before(),
                t.trust_after(),
                t.alpha_before,
                t.alpha_after,
                t.beta_before,
                t.beta_after
            );
        }
    }

    let truth = GroundTruth::from_dataset(&attacked);
    println!(
        "\ndetection vs ground truth: {}",
        truth.score(outcome.suspicious())
    );
}
