//! Scheme shootout: every attack strategy family against every defense,
//! in one table — the condensed story of the paper.
//!
//! ```text
//! cargo run --release --example scheme_shootout
//! ```

use rrs::aggregation::{BfScheme, PScheme, SaScheme};
use rrs::attack::strategies;
use rrs::challenge::{ChallengeConfig, RatingChallenge, ScoringSession};
use rrs::signal::autocorr;
use rrs::AggregationScheme;
use rrs_core::rng::Xoshiro256pp;

fn main() {
    let challenge = RatingChallenge::generate(&ChallengeConfig::paper(), 7);
    let ctx = challenge.attack_context();

    // Sanity-check the paper's premise before the shootout: honest
    // ratings behave like white noise around the product quality.
    let fair_values = challenge
        .fair_dataset()
        .product(challenge.config().downgrade_targets[0])
        .expect("fair data exists")
        .values();
    println!(
        "fair ratings white-noise check (Ljung-Box, 10 lags): Q = {:.1}, looks white: {}\n",
        autocorr::ljung_box(&fair_values, 10).unwrap_or(0.0),
        autocorr::looks_white(&fair_values, 10),
    );

    let p = PScheme::new();
    let sa = SaScheme::new();
    let bf = BfScheme::new();
    let schemes: Vec<(&str, &dyn AggregationScheme)> = vec![("SA", &sa), ("BF", &bf), ("P", &p)];
    let sessions: Vec<(&str, ScoringSession<'_>)> = schemes
        .iter()
        .map(|(name, scheme)| (*name, ScoringSession::new(&challenge, *scheme)))
        .collect();

    println!(
        "{:<20} {:>8} {:>8} {:>8}   (manipulation power; lower = better defense)",
        "strategy", "SA", "BF", "P"
    );
    let mut rng = Xoshiro256pp::seed_from_u64(99);
    for strategy in strategies::catalog() {
        let attack = strategy.build(&ctx, &mut rng);
        print!("{:<20}", strategy.name());
        for (_, session) in &sessions {
            print!(" {:>8.4}", session.score(&attack).total());
        }
        println!(
            "   {}",
            if strategy.is_straightforward() {
                ""
            } else {
                "(smart)"
            }
        );
    }
    println!(
        "\nthe P-scheme column should be smallest almost everywhere; the BF\n\
         column should match SA except against zero-variance extremes —\n\
         the paper's Figs. 2-4 in one table."
    );
}
