//! Quickstart: generate a rating challenge, launch one attack, defend
//! with the P-scheme, and read the manipulation power.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rrs::aggregation::{PScheme, SaScheme};
use rrs::attack::AttackStrategy;
use rrs::challenge::{ChallengeConfig, RatingChallenge};
use rrs::core::GroundTruth;
use rrs::AggregationScheme;
use rrs_core::rng::Xoshiro256pp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate the challenge: nine TVs, 180 days of fair ratings.
    let challenge = RatingChallenge::generate(&ChallengeConfig::paper(), 7);
    println!(
        "challenge: {} products, {} fair ratings, attack window {}",
        challenge.fair_dataset().product_ids().len(),
        challenge.fair_dataset().len(),
        challenge.attack_window(),
    );

    // 2. Build an attack: a camouflage strike (medium bias, high
    //    variance) — the paper's region-R3 recipe against signal-based
    //    detection.
    let ctx = challenge.attack_context();
    let mut rng = Xoshiro256pp::seed_from_u64(1);
    let attack = AttackStrategy::Camouflage {
        bias: 2.2,
        std_dev: 1.5,
        start_day: 20.0,
        duration_days: 30.0,
    }
    .build(&ctx, &mut rng);
    challenge.validate(&attack)?;
    println!("attack: {} unfair ratings [{}]", attack.len(), attack.label);

    // 3. Score the attack against an undefended average and against the
    //    paper's signal-based P-scheme.
    for scheme in [&SaScheme::new() as &dyn AggregationScheme, &PScheme::new()] {
        let report = challenge.score(scheme, &attack)?;
        println!("{:<10} {}", scheme.name(), report);
    }

    // 4. Look at detection quality under the P-scheme.
    let scheme = PScheme::new();
    let attacked = challenge.attacked_dataset(&attack);
    let outcome = scheme.evaluate(&attacked, &challenge.eval_context());
    let truth = GroundTruth::from_dataset(&attacked);
    println!("P-scheme detection: {}", truth.score(outcome.suspicious()));
    Ok(())
}
