//! Detector tour: feed a crafted rating stream — fair data with one
//! embedded camouflage burst — through each of the four detectors and
//! print their indicator curves as ASCII, plus the joint two-path
//! verdict.
//!
//! ```text
//! cargo run --release --example detector_tour
//! ```

use rrs::attack::AttackStrategy;
use rrs::challenge::{ChallengeConfig, RatingChallenge};
use rrs::core::GroundTruth;
use rrs::detectors::{
    arc, hc, mc, me, ArcConfig, ArcVariant, HcConfig, JointDetector, McConfig, MeConfig,
};
use rrs::eval::report::ascii_scatter;
use rrs_core::rng::Xoshiro256pp;

fn main() {
    let challenge = RatingChallenge::generate(&ChallengeConfig::small(), 11);
    let ctx = challenge.attack_context();
    let mut rng = Xoshiro256pp::seed_from_u64(5);
    let attack = AttackStrategy::Burst {
        bias: 3.0,
        std_dev: 0.6,
        start_day: 15.0,
        duration_days: 12.0,
    }
    .build(&ctx, &mut rng);
    let attacked = challenge.attacked_dataset(&attack);
    let product = challenge.config().downgrade_targets[0];
    let timeline = attacked.product(product).expect("attacked product exists");
    let horizon = challenge.horizon();
    println!(
        "stream: {} ratings on {product}; attack of {} unfair ratings at days {:.0}..{:.0}\n",
        timeline.len(),
        attack.for_product(product).len(),
        ctx.horizon.start().as_days() + 15.0,
        ctx.horizon.start().as_days() + 27.0,
    );

    let plot = |name: &str, points: Vec<(f64, f64)>| {
        let pts: Vec<(f64, f64, char)> = points.into_iter().map(|(x, y)| (x, y, '*')).collect();
        println!("--- {name} ---");
        println!("{}", ascii_scatter(&pts, "day", name, 72, 12));
    };

    let mc_out = mc::detect(timeline, &McConfig::default(), |_| 0.5);
    plot(
        "MC indicator  W*(A1-A2)^2",
        mc_out
            .curve
            .points()
            .iter()
            .map(|p| (p.time, p.value))
            .collect(),
    );
    println!(
        "MC flagged segments: {:?}\n",
        mc_out
            .suspicious
            .iter()
            .map(|s| s.window.to_string())
            .collect::<Vec<_>>()
    );

    let larc = arc::detect(timeline, horizon, ArcVariant::Low, &ArcConfig::default());
    plot(
        "L-ARC GLRT",
        larc.curve
            .points()
            .iter()
            .map(|p| (p.time, p.value))
            .collect(),
    );
    println!(
        "L-ARC flagged segments: {:?}\n",
        larc.suspicious
            .iter()
            .map(|s| s.window.to_string())
            .collect::<Vec<_>>()
    );

    let hc_out = hc::detect(timeline, &HcConfig::default());
    plot(
        "HC ratio min(n1/n2, n2/n1)",
        hc_out
            .curve
            .points()
            .iter()
            .map(|p| (p.time, p.value))
            .collect(),
    );

    let me_out = me::detect(timeline, &MeConfig::default());
    plot(
        "ME normalized model error",
        me_out
            .curve
            .points()
            .iter()
            .map(|p| (p.time, p.value))
            .collect(),
    );

    // Bonus: the CUSUM alternative — a detector family the paper does
    // not use, shown here because it integrates evidence over unbounded
    // time instead of a sliding window.
    let values: Vec<f64> = timeline.values();
    let reference = rrs::signal::stats::median(&values).unwrap_or(4.0);
    let alarms = rrs::signal::cusum::Cusum::scan(reference, 0.4, 8.0, &values);
    println!("--- CUSUM (windowless alternative) ---");
    for alarm in alarms.iter().take(5) {
        println!(
            "alarm at rating #{} (day {:.1}), direction {}",
            alarm.index,
            timeline.time_at(alarm.index).as_days(),
            if alarm.direction > 0 { "up" } else { "down" }
        );
    }
    if alarms.is_empty() {
        println!("no alarms");
    }
    println!();

    let joint = JointDetector::default();
    let result = joint.detect_product(timeline, horizon, |_| 0.5);
    println!("--- joint verdict (Fig. 1 two-path integration) ---");
    for hit in &result.hits {
        println!(
            "path {} marked {} ratings in {} ({:?} band)",
            hit.path, hit.marked, hit.window, hit.band
        );
    }
    let truth = GroundTruth::from_dataset(&attacked);
    println!("detection quality: {}", truth.score(&result.suspicious));
}
