//! Replay the Rating Challenge: a synthetic population of 251
//! submissions is scored against all three defense schemes, and the
//! leaderboard is printed — who would have won the cash prize, and under
//! which defense.
//!
//! ```text
//! cargo run --release --example challenge_replay
//! ```

use rrs::aggregation::{BfScheme, PScheme, SaScheme};
use rrs::attack::{generate_population, PopulationConfig};
use rrs::challenge::{ChallengeConfig, RatingChallenge, ScoringSession};
use rrs::AggregationScheme;

fn main() {
    let challenge = RatingChallenge::generate(&ChallengeConfig::paper(), 7);
    let ctx = challenge.attack_context();
    let population = generate_population(&ctx, &PopulationConfig::default());
    println!(
        "scoring {} submissions against three defenses ...\n",
        population.len()
    );

    let p = PScheme::new();
    let sa = SaScheme::new();
    let bf = BfScheme::new();
    for scheme in [&p as &dyn AggregationScheme, &sa, &bf] {
        let session = ScoringSession::new(&challenge, scheme);
        let mut scored = session.score_population(&population);
        scored.sort_by(|a, b| b.report.total().total_cmp(&a.report.total()));

        println!("=== leaderboard under {} ===", scheme.name());
        println!("{:<5} {:<18} {:>8}", "rank", "strategy", "MP");
        for (rank, s) in scored.iter().take(8).enumerate() {
            println!(
                "{:<5} {:<18} {:>8.4}{}",
                rank + 1,
                s.strategy,
                s.report.total(),
                if s.straightforward { "" } else { "  (smart)" }
            );
        }
        let max = scored.first().map_or(0.0, |s| s.report.total());
        let straightforward_best = scored
            .iter()
            .filter(|s| s.straightforward)
            .map(|s| s.report.total())
            .fold(0.0f64, f64::max);
        println!("max MP {max:.4}; best straightforward submission {straightforward_best:.4}\n");
    }
}
